package voip

import (
	"strings"
	"testing"
	"time"

	"siphoc/internal/core"
	"siphoc/internal/netem"
	"siphoc/internal/routing/aodv"
	"siphoc/internal/sip"
	"siphoc/internal/slp"
)

// fixture builds two SIPHoc nodes with proxies and returns phones on each.
type fixture struct {
	net     *netem.Network
	phones  map[string]*Phone
	nodes   []*netem.Host
	proxies []*core.Proxy
}

func newFixture(t *testing.T, autoAnswer bool) *fixture {
	t.Helper()
	f := &fixture{
		net:    netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond}),
		phones: make(map[string]*Phone),
	}
	t.Cleanup(f.net.Close)
	hosts, err := netem.Chain(f.net, 2, 80, "10.0.0")
	if err != nil {
		t.Fatal(err)
	}
	f.nodes = hosts
	users := []string{"alice", "bob"}
	for i, h := range hosts {
		proto := aodv.New(h, aodv.SimConfig())
		agent := slp.NewAgent(h, slp.Config{})
		agent.AttachRouting(proto)
		if err := proto.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proto.Stop)
		if err := agent.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(agent.Stop)
		proxy := core.NewProxy(h, agent, nil, core.ProxyConfig{SLPTimeout: 2 * time.Second})
		if err := proxy.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proxy.Stop)
		f.proxies = append(f.proxies, proxy)
		ph := New(h, Config{
			User: users[i], Domain: "voicehoc.ch",
			OutboundProxy: proxy.Addr(),
			NoAutoAnswer:  !autoAnswer,
			SIP:           sip.SimConfig(),
		})
		if err := ph.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ph.Stop)
		f.phones[users[i]] = ph
	}
	for _, u := range users {
		var err error
		for range 5 {
			if err = f.phones[u].Register(); err == nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("register %s: %v", u, err)
		}
	}
	return f
}

func TestCallLifecycleStates(t *testing.T) {
	f := newFixture(t, true)
	alice := f.phones["alice"]
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State() != StateEstablished {
		t.Fatalf("state = %v", call.State())
	}
	if call.SetupDuration() <= 0 {
		t.Fatal("setup duration not recorded")
	}
	// Hangup twice: second must error, state ends at Ended.
	if err := call.Hangup(); err != nil {
		t.Fatal(err)
	}
	if call.State() != StateEnded {
		t.Fatalf("state after hangup = %v", call.State())
	}
	if err := call.Hangup(); err == nil {
		t.Fatal("second hangup succeeded")
	}
}

func TestRemoteHangupEndsBothLegs(t *testing.T) {
	f := newFixture(t, true)
	alice, bob := f.phones["alice"], f.phones["bob"]
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	var bobCall *Call
	select {
	case bobCall = <-bob.Incoming():
	case <-time.After(5 * time.Second):
		t.Fatal("bob never saw the call")
	}
	if err := bobCall.WaitEstablished(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Bob hangs up; Alice's leg must end via the BYE.
	if err := bobCall.Hangup(); err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEnded(10 * time.Second); err != nil {
		t.Fatalf("alice leg never ended: %v", err)
	}
}

func TestManualAnswer(t *testing.T) {
	f := newFixture(t, false)
	alice, bob := f.phones["alice"], f.phones["bob"]
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		t.Fatal(err)
	}
	var inc *Call
	select {
	case inc = <-bob.Incoming():
	case <-time.After(10 * time.Second):
		t.Fatal("no incoming call")
	}
	if inc.State() != StateRinging {
		t.Fatalf("incoming state = %v", inc.State())
	}
	// Caller should be hearing ringback by now.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && call.State() != StateRinging {
		time.Sleep(5 * time.Millisecond)
	}
	if call.State() != StateRinging {
		t.Fatalf("caller state = %v, want ringing", call.State())
	}
	if err := inc.Answer(); err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Answering an established call errors.
	if err := inc.Answer(); err == nil {
		t.Fatal("double answer succeeded")
	}
	_ = call.Hangup()
}

func TestRejectDeliversBusy(t *testing.T) {
	f := newFixture(t, false)
	alice, bob := f.phones["alice"], f.phones["bob"]
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		t.Fatal(err)
	}
	inc := <-bob.Incoming()
	if err := inc.Reject(sip.StatusBusyHere); err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEnded(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State() != StateFailed || call.FailCode() != sip.StatusBusyHere {
		t.Fatalf("state=%v code=%d", call.State(), call.FailCode())
	}
}

func TestUnregisterRemovesBinding(t *testing.T) {
	f := newFixture(t, true)
	bob := f.phones["bob"]
	if err := bob.Unregister(); err != nil {
		t.Fatal(err)
	}
	// Bob's own proxy no longer knows him; SLP caches elsewhere may
	// linger until TTL, so call his proxy's view directly: a new call
	// from Alice must eventually fail (404 from Bob's proxy or timeout).
	alice := f.phones["alice"]
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(10 * time.Second); err == nil {
		t.Fatal("call to unregistered user established")
	}
}

func TestDialTargetParsing(t *testing.T) {
	f := newFixture(t, true)
	alice := f.phones["alice"]
	if _, err := alice.Dial("sip:bob@voicehoc.ch"); err != nil {
		t.Fatalf("full URI rejected: %v", err)
	}
	if _, err := alice.Dial("not a uri at all::"); err == nil {
		t.Fatal("garbage target accepted")
	}
}

func TestPhoneStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateSetup: "setup", StateRinging: "ringing", StateEstablished: "established",
		StateEnded: "ended", StateFailed: "failed", State(99): "state(99)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestOptionsAnswered(t *testing.T) {
	f := newFixture(t, true)
	bob := f.phones["bob"]
	// Probe Bob's UA directly with OPTIONS.
	conn, err := f.nodes[0].Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	stack := sip.NewStack(conn, sip.SimConfig())
	t.Cleanup(stack.Close)
	req := sip.NewRequest(sip.MethodOptions, sip.MustParseURI("sip:bob@voicehoc.ch"))
	req.From = &sip.NameAddr{URI: sip.MustParseURI("sip:probe@voicehoc.ch")}
	req.From.SetTag("t")
	req.To = &sip.NameAddr{URI: sip.MustParseURI("sip:bob@voicehoc.ch")}
	req.CallID = "c-options"
	req.CSeq = sip.CSeq{Seq: 1, Method: sip.MethodOptions}
	tx, err := stack.SendRequest(req, bob.Addr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != sip.StatusOK {
		t.Fatalf("OPTIONS status = %d", resp.StatusCode)
	}
}

func TestAORFormat(t *testing.T) {
	f := newFixture(t, true)
	if aor := f.phones["alice"].AOR(); !strings.HasPrefix(aor, "alice@") {
		t.Fatalf("AOR = %q", aor)
	}
}
