package voip

import (
	"context"
	"fmt"
	"sync"
	"time"

	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/rtp"
	"siphoc/internal/sdp"
	"siphoc/internal/sip"
)

// State is a call's lifecycle state.
type State int

// Call states.
const (
	StateSetup State = iota + 1
	StateRinging
	StateEstablished
	StateEnded
	StateFailed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateSetup:
		return "setup"
	case StateRinging:
		return "ringing"
	case StateEstablished:
		return "established"
	case StateEnded:
		return "ended"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Call is one voice call, incoming or outgoing.
type Call struct {
	phone    *Phone
	outgoing bool
	callID   string

	mu            sync.Mutex
	state         State
	failCode      int
	localTag      string
	remoteTag     string
	remoteContact *sip.URI
	remoteSDP     *sdp.Session
	inviteTx      *sip.ServerTx // incoming calls: pending INVITE transaction
	inviteReq     *sip.Message
	inviteSent    *sip.Message // outgoing calls: the INVITE as transmitted
	routeSet      []*sip.NameAddr
	answered      bool // a 200 OK was already sent for the INVITE

	media       *rtp.Session
	mediaNode   netem.NodeID
	mediaPort   uint16
	setupAt     time.Time
	establishAt time.Time

	established chan struct{}
	estOnce     sync.Once
	ended       chan struct{}
	endOnce     sync.Once

	// setupSpan is the call.setup anchor span (outgoing calls only); it is
	// the zero handle when tracing is disabled or the call is incoming.
	setupSpan obs.SpanHandle
	spanOnce  sync.Once
}

// newOutgoingCall allocates media and the dialog state for a call to uri.
func (p *Phone) newOutgoingCall(uri *sip.URI) (*Call, error) {
	mediaConn, err := p.host.Listen(0)
	if err != nil {
		return nil, err
	}
	c := &Call{
		phone:         p,
		outgoing:      true,
		callID:        p.stack.NewCallID(),
		state:         StateSetup,
		localTag:      p.stack.NewTag(),
		remoteContact: uri.Clone(),
		media:         rtp.NewSessionWithPacer(mediaConn, p.clk, uint32(mediaConn.LocalPort()), p.cfg.MediaPacer),
		setupAt:       p.clk.Now(),
		established:   make(chan struct{}),
		ended:         make(chan struct{}),
	}
	// The call.setup span anchors the trace window: every other span that
	// overlaps it (SLP resolve, route discovery, SIP legs, gateway attach)
	// is stitched into this call's timeline.
	c.setupSpan = p.obs.StartSpan(c.callID, obs.PhaseSetup, string(p.host.ID()))
	p.obsPlaced.Inc()
	p.addCall(c)
	return c, nil
}

// newIncomingCall captures the dialog state from a ringing INVITE.
func (p *Phone) newIncomingCall(tx *sip.ServerTx) (*Call, error) {
	req := tx.Request()
	mediaConn, err := p.host.Listen(0)
	if err != nil {
		return nil, err
	}
	c := &Call{
		phone:       p,
		callID:      req.CallID,
		state:       StateSetup,
		localTag:    p.stack.NewTag(),
		remoteTag:   req.From.Tag(),
		inviteTx:    tx,
		inviteReq:   req,
		media:       rtp.NewSessionWithPacer(mediaConn, p.clk, uint32(mediaConn.LocalPort()), p.cfg.MediaPacer),
		setupAt:     p.clk.Now(),
		established: make(chan struct{}),
		ended:       make(chan struct{}),
	}
	if len(req.Contact) > 0 {
		c.remoteContact = req.Contact[0].URI.Clone()
	}
	// UAS route set: the Record-Route entries in request order
	// (RFC 3261 §12.1.1).
	for _, rr := range req.RecordRoute {
		c.routeSet = append(c.routeSet, rr.Clone())
	}
	if len(req.Body) > 0 {
		if offer, err := sdp.Parse(req.Body); err == nil {
			c.remoteSDP = offer
			if node, port, err := offer.AudioEndpoint(); err == nil {
				c.mediaNode, c.mediaPort = netem.NodeID(node), port
			}
		}
	}
	return c, nil
}

// ID returns the Call-ID.
func (c *Call) ID() string { return c.callID }

// State returns the current call state.
func (c *Call) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// FailCode returns the SIP status that failed the call (0 otherwise).
func (c *Call) FailCode() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failCode
}

// SetupDuration returns how long call establishment took (valid once
// established).
func (c *Call) SetupDuration() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.establishAt.IsZero() {
		return 0
	}
	return c.establishAt.Sub(c.setupAt)
}

func (c *Call) setState(s State) {
	c.mu.Lock()
	c.state = s
	c.mu.Unlock()
}

// WaitEstablished blocks until the call connects, fails, or the timeout
// elapses. The timeout runs on the phone's clock (so fake clocks work); it
// is a thin wrapper over the same wait as WaitEstablishedContext.
func (c *Call) WaitEstablished(timeout time.Duration) error {
	timer := c.phone.clk.NewTimer(timeout)
	defer timer.Stop()
	return c.waitEstablished(timer.C(), nil, nil)
}

// WaitEstablishedContext blocks until the call connects, fails, or ctx is
// cancelled (in which case it returns ctx.Err(); the call itself keeps
// ringing — pair with DialContext to also abandon it).
func (c *Call) WaitEstablishedContext(ctx context.Context) error {
	return c.waitEstablished(nil, ctx.Done(), ctx.Err)
}

// waitEstablished is the shared wait; nil channels never fire.
func (c *Call) waitEstablished(timeoutC <-chan time.Time, done <-chan struct{}, doneErr func() error) error {
	select {
	case <-c.established:
		return nil
	case <-c.ended:
		return fmt.Errorf("voip: call failed with status %d", c.FailCode())
	case <-timeoutC:
		return fmt.Errorf("voip: call establishment timed out")
	case <-done:
		return doneErr()
	}
}

// watchContext abandons a still-ringing outgoing call when ctx is cancelled.
func (c *Call) watchContext(ctx context.Context) {
	select {
	case <-c.established:
		return
	case <-c.ended:
		return
	case <-ctx.Done():
	}
	for {
		select {
		case <-c.established:
			return
		case <-c.ended:
			return
		default:
		}
		// Cancel fails while the INVITE is still in flight or once the
		// call has settled; retry until one or the other holds.
		if err := c.Cancel(); err == nil {
			return
		}
		timer := c.phone.clk.NewTimer(5 * time.Millisecond)
		select {
		case <-c.established:
			timer.Stop()
			return
		case <-c.ended:
			timer.Stop()
			return
		case <-timer.C():
		}
	}
}

// Trace returns the call's observability timeline: the recorded spans
// (SLP resolve, route discovery, SIP legs, gateway attach, media start)
// stitched under the call.setup anchor. With observability disabled it
// returns an empty, non-nil trace.
func (c *Call) Trace() *obs.CallTrace {
	return c.phone.obs.Trace(c.callID)
}

// WaitEnded blocks until the call is torn down or the timeout elapses.
func (c *Call) WaitEnded(timeout time.Duration) error {
	timer := c.phone.clk.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-c.ended:
		return nil
	case <-timer.C():
		return fmt.Errorf("voip: call teardown timed out")
	}
}

// SendVoice streams n synthetic voice frames to the remote media endpoint,
// blocking at the codec frame rate. It returns the number of frames sent.
func (c *Call) SendVoice(n int) int {
	st := c.StartVoice(n)
	if st == nil {
		return 0
	}
	return st.Wait()
}

// StartVoice begins streaming n synthetic voice frames to the remote media
// endpoint without blocking; the returned handle's Wait reports the frames
// sent. It returns nil when the call has no media endpoint yet.
func (c *Call) StartVoice(n int) *rtp.Stream {
	c.mu.Lock()
	node, port := c.mediaNode, c.mediaPort
	media := c.media
	c.mu.Unlock()
	if node == "" || media == nil {
		return nil
	}
	return media.StartStream(node, port, n)
}

// MediaStats returns the receive-side media quality snapshot.
func (c *Call) MediaStats() rtp.Stats {
	c.mu.Lock()
	media := c.media
	c.mu.Unlock()
	if media == nil {
		return rtp.Stats{}
	}
	return media.Stats()
}

// runOutgoing drives the UAC INVITE transaction.
func (c *Call) runOutgoing() {
	p := c.phone
	offer := sdp.NewAudioOffer(p.cfg.User, string(p.host.ID()), c.media.Port())

	req := sip.NewRequest(sip.MethodInvite, c.remoteContact.Clone())
	req.From = p.identity()
	req.From.Params = map[string]string{"tag": c.localTag}
	req.To = &sip.NameAddr{URI: c.remoteContact.Clone()}
	req.CallID = c.callID
	req.CSeq = sip.CSeq{Seq: p.nextCSeq(), Method: sip.MethodInvite}
	req.Contact = []*sip.NameAddr{p.contact()}
	req.ContentType = sdp.ContentType
	req.Body = offer.Marshal()
	req.UserAgent = "siphoc-softphone/1.0"

	tx, err := p.stack.SendRequest(req, p.cfg.OutboundProxy)
	if err != nil {
		c.endLocal(sip.StatusInternalError)
		return
	}
	c.mu.Lock()
	c.inviteSent = tx.Request()
	c.mu.Unlock()
	final, err := tx.AwaitWithProvisional(func(m *sip.Message) {
		if m.StatusCode == sip.StatusRinging {
			c.setState(StateRinging)
		}
	})
	if err != nil {
		c.endLocal(sip.StatusRequestTimeout)
		return
	}
	if final.StatusCode != sip.StatusOK {
		c.endLocal(final.StatusCode)
		return
	}
	// Success: capture dialog and media state from the 200.
	c.mu.Lock()
	c.remoteTag = final.To.Tag()
	if len(final.Contact) > 0 {
		c.remoteContact = final.Contact[0].URI.Clone()
	}
	// UAC route set: Record-Route entries in reverse order (RFC 3261
	// §12.1.2).
	c.routeSet = nil
	for i := len(final.RecordRoute) - 1; i >= 0; i-- {
		c.routeSet = append(c.routeSet, final.RecordRoute[i].Clone())
	}
	if len(final.Body) > 0 {
		if answer, err := sdp.Parse(final.Body); err == nil {
			c.remoteSDP = answer
			if node, port, err := answer.AudioEndpoint(); err == nil {
				c.mediaNode, c.mediaPort = netem.NodeID(node), port
			}
		}
	}
	remote := c.remoteContact.Clone()
	routes := cloneRoutes(c.routeSet)
	c.mu.Unlock()

	// ACK the 200 through the outbound proxy (RFC 3261 §13.2.2.4),
	// carrying the dialog's route set.
	ack := sip.NewRequest(sip.MethodAck, remote)
	ack.Via = []*sip.Via{{
		Transport: "UDP", Host: string(p.host.ID()), Port: p.cfg.Port,
		Params: map[string]string{"branch": p.stack.NewBranch()},
	}}
	ack.From = req.From.Clone()
	ack.To = final.To.Clone()
	ack.CallID = c.callID
	ack.CSeq = sip.CSeq{Seq: req.CSeq.Seq, Method: sip.MethodAck}
	ack.Route = routes
	_ = p.stack.Send(ack, p.cfg.OutboundProxy)

	c.confirmEstablished()
}

// Answer accepts an incoming ringing call with an SDP answer.
func (c *Call) Answer() error {
	c.mu.Lock()
	if c.answered || (c.state != StateRinging && c.state != StateSetup) {
		state, answered := c.state, c.answered
		c.mu.Unlock()
		return fmt.Errorf("voip: answer in state %s (answered=%v)", state, answered)
	}
	c.answered = true
	tx := c.inviteTx
	req := c.inviteReq
	offer := c.remoteSDP
	c.mu.Unlock()
	if tx == nil || req == nil {
		return fmt.Errorf("voip: no pending INVITE")
	}
	p := c.phone
	resp := sip.NewResponse(req, sip.StatusOK, "")
	resp.To.SetTag(c.localTag)
	resp.Contact = []*sip.NameAddr{p.contact()}
	if offer != nil {
		answer, err := sdp.Answer(offer, p.cfg.User, string(p.host.ID()), c.media.Port())
		if err != nil {
			_ = tx.RespondCode(488, "Not Acceptable Here")
			c.endLocal(488)
			return err
		}
		resp.ContentType = sdp.ContentType
		resp.Body = answer.Marshal()
	}
	return tx.Respond(resp)
}

// Reject declines an incoming ringing call.
func (c *Call) Reject(code int) error {
	c.mu.Lock()
	tx := c.inviteTx
	c.mu.Unlock()
	if tx == nil {
		return fmt.Errorf("voip: no pending INVITE")
	}
	if code == 0 {
		code = sip.StatusBusyHere
	}
	if err := tx.RespondCode(code, ""); err != nil {
		return err
	}
	c.endLocal(code)
	return nil
}

// cancelRemote handles a CANCEL from the caller: if the INVITE has not been
// answered yet, conclude it with 487 Request Terminated.
func (c *Call) cancelRemote() {
	c.mu.Lock()
	pending := !c.answered && (c.state == StateSetup || c.state == StateRinging)
	c.mu.Unlock()
	if pending {
		c.rejectPending(sip.StatusRequestTerminated)
	}
}

// rejectPending answers the pending INVITE with code (CANCEL handling).
func (c *Call) rejectPending(code int) {
	c.mu.Lock()
	tx := c.inviteTx
	c.mu.Unlock()
	if tx != nil {
		_ = tx.RespondCode(code, "")
	}
	c.endLocal(code)
}

// Cancel abandons an outgoing call that has not been answered yet
// (RFC 3261 §9.1). The call ends with 487 Request Terminated once the
// callee acknowledges the cancellation.
func (c *Call) Cancel() error {
	c.mu.Lock()
	if !c.outgoing {
		c.mu.Unlock()
		return fmt.Errorf("voip: cancel on an incoming call (use Reject)")
	}
	if c.state != StateSetup && c.state != StateRinging {
		st := c.state
		c.mu.Unlock()
		return fmt.Errorf("voip: cancel in state %s", st)
	}
	invite := c.inviteSent
	c.mu.Unlock()
	if invite == nil {
		return fmt.Errorf("voip: INVITE not sent yet")
	}
	p := c.phone
	tx, err := p.stack.SendRequestPreVia(sip.BuildCancel(invite), p.cfg.OutboundProxy)
	if err != nil {
		return err
	}
	// The 200 for the CANCEL is hop-by-hop; the call itself concludes via
	// the 487 arriving on the INVITE transaction.
	if _, err := tx.Await(); err != nil {
		return fmt.Errorf("voip: cancel: %w", err)
	}
	return nil
}

// Hangup terminates an established call with BYE.
func (c *Call) Hangup() error {
	c.mu.Lock()
	if c.state != StateEstablished {
		st := c.state
		c.mu.Unlock()
		return fmt.Errorf("voip: hangup in state %s", st)
	}
	remote := c.remoteContact.Clone()
	localTag, remoteTag := c.localTag, c.remoteTag
	routes := cloneRoutes(c.routeSet)
	c.mu.Unlock()

	p := c.phone
	bye := sip.NewRequest(sip.MethodBye, remote)
	bye.Route = routes
	bye.From = p.identity()
	bye.From.Params = map[string]string{"tag": localTag}
	bye.To = &sip.NameAddr{URI: remote.Clone()}
	if remoteTag != "" {
		bye.To.SetTag(remoteTag)
	}
	bye.CallID = c.callID
	bye.CSeq = sip.CSeq{Seq: p.nextCSeq(), Method: sip.MethodBye}
	tx, err := p.stack.SendRequest(bye, p.cfg.OutboundProxy)
	if err != nil {
		c.endLocal(0)
		return err
	}
	if _, err := tx.Await(); err != nil {
		c.endLocal(0)
		return fmt.Errorf("voip: bye: %w", err)
	}
	c.endLocal(0)
	return nil
}

func cloneRoutes(in []*sip.NameAddr) []*sip.NameAddr {
	if in == nil {
		return nil
	}
	out := make([]*sip.NameAddr, len(in))
	for i, na := range in {
		out[i] = na.Clone()
	}
	return out
}

// confirmEstablished transitions to Established exactly once.
func (c *Call) confirmEstablished() {
	c.estOnce.Do(func() {
		c.mu.Lock()
		c.state = StateEstablished
		c.establishAt = c.phone.clk.Now()
		establishAt := c.establishAt
		media := c.media
		c.mu.Unlock()
		c.spanOnce.Do(func() {
			// End exactly at establishAt so the trace's setup window
			// matches SetupDuration to the nanosecond.
			c.setupSpan.EndAt(establishAt, "established")
		})
		p := c.phone
		if c.outgoing {
			p.obsEstablished.Inc()
			p.obsSetupDelay.Observe(c.SetupDuration())
		}
		if p.obs.Enabled() && media != nil {
			span := p.obs.StartSpan(c.callID, obs.PhaseMediaStart, string(p.host.ID()))
			media.OnFirstRecv(func(t time.Time) {
				span.EndAt(t, "first rtp packet")
			})
		}
		close(c.established)
	})
}

// endLocal finishes the call from this side; code != 0 marks failure.
func (c *Call) endLocal(code int) {
	c.endOnce.Do(func() {
		c.spanOnce.Do(func() {
			c.setupSpan.End(fmt.Sprintf("failed status=%d", code))
		})
		if c.outgoing && code != 0 {
			c.phone.obsFailed.Inc()
		}
		c.mu.Lock()
		if code != 0 {
			c.state = StateFailed
			c.failCode = code
		} else {
			c.state = StateEnded
		}
		media := c.media
		c.mu.Unlock()
		if media != nil {
			media.Close()
		}
		c.phone.removeCall(c.callID)
		close(c.ended)
	})
}

// endRemote finishes the call after a remote BYE.
func (c *Call) endRemote() { c.endLocal(0) }
