package voip

import (
	"testing"
	"time"
)

// TestInDialogRequestsTraverseBothProxies verifies Record-Route: the BYE of
// an established call follows the dialog's route set through BOTH SIPHoc
// proxies instead of shortcutting to the remote contact.
func TestInDialogRequestsTraverseBothProxies(t *testing.T) {
	f := newFixture(t, true)
	alice := f.phones["alice"]
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The UAC learned a two-entry route set from the 200's Record-Route.
	call.mu.Lock()
	routes := len(call.routeSet)
	call.mu.Unlock()
	if routes != 2 {
		t.Fatalf("route set size = %d, want 2 (both proxies)", routes)
	}
	calleeBefore := f.proxies[1].Stats()
	callerBefore := f.proxies[0].Stats()
	if err := call.Hangup(); err != nil {
		t.Fatal(err)
	}
	calleeAfter := f.proxies[1].Stats()
	callerAfter := f.proxies[0].Stats()
	// Without Record-Route the caller's proxy would deliver the BYE
	// straight to Bob's UA; with it, the callee-side proxy handles the
	// BYE too (it consumes its own Route entry and delivers the final
	// endpoint hop).
	if calleeAfter.RequestsRouted <= calleeBefore.RequestsRouted {
		t.Fatalf("callee proxy skipped by in-dialog BYE: before=%+v after=%+v",
			calleeBefore, calleeAfter)
	}
	// The caller-side proxy followed the Route set rather than resolving.
	if callerAfter.RouteFollowed <= callerBefore.RouteFollowed {
		t.Fatalf("caller proxy did not follow the route set: before=%+v after=%+v",
			callerBefore, callerAfter)
	}
}

// TestUASRouteSetUsedForItsBye covers the reverse direction: the callee's
// BYE also follows the recorded route.
func TestUASRouteSetUsedForItsBye(t *testing.T) {
	f := newFixture(t, true)
	alice, bob := f.phones["alice"], f.phones["bob"]
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEstablished(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	var bobCall *Call
	select {
	case bobCall = <-bob.Incoming():
	case <-time.After(5 * time.Second):
		t.Fatal("no callee leg")
	}
	if err := bobCall.WaitEstablished(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	callerBefore := f.proxies[0].Stats()
	calleeBefore := f.proxies[1].Stats()
	if err := bobCall.Hangup(); err != nil {
		t.Fatal(err)
	}
	if err := call.WaitEnded(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	callerAfter := f.proxies[0].Stats()
	calleeAfter := f.proxies[1].Stats()
	// Bob's BYE goes out via his proxy (which follows the route set) and
	// traverses Alice's proxy on the way to her UA.
	if calleeAfter.RouteFollowed <= calleeBefore.RouteFollowed {
		t.Fatalf("callee's proxy did not follow the route set: before=%+v after=%+v",
			calleeBefore, calleeAfter)
	}
	if callerAfter.RequestsRouted <= callerBefore.RequestsRouted {
		t.Fatalf("caller proxy skipped by callee's BYE: before=%+v after=%+v",
			callerBefore, callerAfter)
	}
}
