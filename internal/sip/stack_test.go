package sip

import (
	"sync/atomic"
	"testing"
	"time"

	"siphoc/internal/netem"
)

// pair builds two directly-connected hosts with SIP stacks on port 5060.
func pair(t *testing.T, cfg netem.Config) (*Stack, *Stack, *netem.Network) {
	t.Helper()
	if cfg.BaseDelay == 0 {
		cfg.BaseDelay = 100 * time.Microsecond
	}
	n := netem.NewNetwork(cfg)
	t.Cleanup(n.Close)
	ha, err := n.AddHost("a", netem.Position{})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := n.AddHost("b", netem.Position{X: 10})
	if err != nil {
		t.Fatal(err)
	}
	ha.SetRouteProvider(direct{})
	hb.SetRouteProvider(direct{})
	ca, err := ha.Listen(DefaultPort)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := hb.Listen(DefaultPort)
	if err != nil {
		t.Fatal(err)
	}
	sa := NewStack(ca, SimConfig())
	sb := NewStack(cb, SimConfig())
	t.Cleanup(sa.Close)
	t.Cleanup(sb.Close)
	return sa, sb, n
}

// direct routes every destination as a 1-hop neighbour.
type direct struct{}

func (direct) NextHop(dst netem.NodeID) (netem.NodeID, bool) { return dst, true }
func (direct) RequestRoute(dst netem.NodeID, done func(bool)) {
	done(true)
}

func testRequest(s *Stack, method string) *Message {
	req := NewRequest(method, MustParseURI("sip:bob@b"))
	req.From = &NameAddr{URI: MustParseURI("sip:alice@a")}
	req.From.SetTag(s.NewTag())
	req.To = &NameAddr{URI: MustParseURI("sip:bob@b")}
	req.CallID = s.NewCallID()
	req.CSeq = CSeq{Seq: 1, Method: method}
	return req
}

func TestRequestResponseExchange(t *testing.T) {
	sa, sb, _ := pair(t, netem.Config{})
	sb.OnRequest(func(tx *ServerTx) {
		if tx.Request().Method != MethodOptions {
			t.Errorf("method = %q", tx.Request().Method)
		}
		_ = tx.RespondCode(StatusOK, "")
	})
	tx, err := sa.SendRequest(testRequest(sa, MethodOptions), Addr{Node: "b", Port: DefaultPort})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.To.Tag() == "" {
		t.Fatal("UAS did not add a To tag")
	}
}

func TestProvisionalThenFinal(t *testing.T) {
	sa, sb, _ := pair(t, netem.Config{})
	sb.OnRequest(func(tx *ServerTx) {
		_ = tx.RespondCode(StatusRinging, "")
		time.Sleep(10 * time.Millisecond)
		_ = tx.RespondCode(StatusOK, "")
	})
	tx, err := sa.SendRequest(testRequest(sa, MethodInvite), Addr{Node: "b", Port: DefaultPort})
	if err != nil {
		t.Fatal(err)
	}
	var sawRinging bool
	final, err := tx.AwaitWithProvisional(func(m *Message) {
		if m.StatusCode == StatusRinging {
			sawRinging = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawRinging || final.StatusCode != StatusOK {
		t.Fatalf("ringing=%v final=%d", sawRinging, final.StatusCode)
	}
}

func TestRetransmissionOverLossyLink(t *testing.T) {
	// 40% frame loss: retransmissions must still get the exchange through.
	sa, sb, _ := pair(t, netem.Config{LossRate: 0.4, Seed: 11})
	var handled atomic.Int32
	sb.OnRequest(func(tx *ServerTx) {
		handled.Add(1)
		_ = tx.RespondCode(StatusOK, "")
	})
	tx, err := sa.SendRequest(testRequest(sa, MethodOptions), Addr{Node: "b", Port: DefaultPort})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Retransmissions must not re-trigger the TU.
	time.Sleep(50 * time.Millisecond)
	if n := handled.Load(); n != 1 {
		t.Fatalf("handler invoked %d times", n)
	}
}

func TestTimeoutYields408(t *testing.T) {
	sa, _, n := pair(t, netem.Config{})
	n.SetLink("a", "b", false) // black hole
	tx, err := sa.SendRequest(testRequest(sa, MethodOptions), Addr{Node: "b", Port: DefaultPort})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != StatusRequestTimeout {
		t.Fatalf("status = %d, want 408", resp.StatusCode)
	}
}

func TestInviteNon2xxGetsAck(t *testing.T) {
	sa, sb, _ := pair(t, netem.Config{})
	acked := make(chan struct{}, 1)
	sb.OnRequest(func(tx *ServerTx) {
		_ = tx.RespondCode(StatusBusyHere, "")
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if tx.Acked() {
				acked <- struct{}{}
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
	tx, err := sa.SendRequest(testRequest(sa, MethodInvite), Addr{Node: "b", Port: DefaultPort})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != StatusBusyHere {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	select {
	case <-acked:
	case <-time.After(2 * time.Second):
		t.Fatal("transaction-level ACK never arrived")
	}
}

func TestDefaultHandlerRejects(t *testing.T) {
	sa, _, _ := pair(t, netem.Config{})
	// Peer stack has no handler installed: it must answer 503.
	tx, err := sa.SendRequest(testRequest(sa, MethodOptions), Addr{Node: "b", Port: DefaultPort})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tx.Await()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != StatusServiceUnavail {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

func TestBranchesUnique(t *testing.T) {
	sa, _, _ := pair(t, netem.Config{})
	seen := make(map[string]bool)
	for range 100 {
		b := sa.NewBranch()
		if seen[b] {
			t.Fatalf("duplicate branch %q", b)
		}
		seen[b] = true
	}
}

func TestPrepareForward(t *testing.T) {
	req := testRequest(&Stack{}, MethodInvite)
	req.MaxForwards = 2
	self := Addr{Node: "p", Port: 5060}
	fwd, err := PrepareForward(req, self)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.MaxForwards != 1 {
		t.Fatalf("max-forwards = %d", fwd.MaxForwards)
	}
	if req.MaxForwards != 2 {
		t.Fatal("original mutated")
	}
	fwd.MaxForwards = 0
	if _, err := PrepareForward(fwd, self); err != ErrTooManyHops {
		t.Fatalf("err = %v, want ErrTooManyHops", err)
	}
}

func TestPrepareResponseForward(t *testing.T) {
	resp := &Message{
		StatusCode: 200, Reason: "OK",
		From:   &NameAddr{URI: MustParseURI("sip:a@x")},
		To:     &NameAddr{URI: MustParseURI("sip:b@y")},
		CallID: "c", CSeq: CSeq{1, MethodInvite},
		MaxForwards: -1, Expires: -1,
		Via: []*Via{
			{Transport: "UDP", Host: "proxy", Port: 5060, Params: map[string]string{"branch": "z9hG4bK-p"}},
			{Transport: "UDP", Host: "ua", Port: 5062, Params: map[string]string{"branch": "z9hG4bK-u"}},
		},
	}
	self := Addr{Node: "proxy", Port: 5060}
	fwd, next, err := PrepareResponseForward(resp, self)
	if err != nil {
		t.Fatal(err)
	}
	if next.Node != "ua" || next.Port != 5062 {
		t.Fatalf("next = %+v", next)
	}
	if len(fwd.Via) != 1 || fwd.Via[0].Host != "ua" {
		t.Fatalf("via = %+v", fwd.Via)
	}
	// Forwarding when we are not the top Via is an error.
	if _, _, err := PrepareResponseForward(fwd, self); err == nil {
		t.Fatal("forwarded response with foreign top Via")
	}
}

func TestHasLoop(t *testing.T) {
	req := testRequest(&Stack{}, MethodInvite)
	self := Addr{Node: "p", Port: 5060}
	if HasLoop(req, self) {
		t.Fatal("loop detected in fresh request")
	}
	req.Via = append(req.Via, &Via{Transport: "UDP", Host: "p", Port: 5060})
	if !HasLoop(req, self) {
		t.Fatal("loop not detected")
	}
}
