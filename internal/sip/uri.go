package sip

import (
	"fmt"
	"strconv"
	"strings"
)

// URI is a SIP URI of the form sip:user@host:port;param=value.
type URI struct {
	Scheme string // "sip" (default) or "sips"
	User   string
	Host   string
	Port   uint16 // 0 means unspecified (default 5060)
	Params map[string]string
}

// DefaultPort is the well-known SIP port.
const DefaultPort uint16 = 5060

// ParseURI parses a SIP URI.
func ParseURI(s string) (*URI, error) {
	u := &URI{}
	if err := parseURIInto(u, s); err != nil {
		return nil, err
	}
	return u, nil
}

// parseURIInto parses s into a caller-supplied URI, letting callers that
// embed a URI in a larger struct (ParseNameAddr) do one allocation for both.
func parseURIInto(u *URI, s string) error {
	u.Scheme = "sip"
	rest := s
	switch {
	case strings.HasPrefix(rest, "sips:"):
		u.Scheme = "sips"
		rest = rest[len("sips:"):]
	case strings.HasPrefix(rest, "sip:"):
		rest = rest[len("sip:"):]
	default:
		return fmt.Errorf("sip: uri %q: missing sip: scheme", s)
	}
	if i := strings.IndexByte(rest, ';'); i >= 0 {
		params, err := parseParams(rest[i+1:])
		if err != nil {
			return fmt.Errorf("sip: uri %q: %v", s, err)
		}
		u.Params = params
		rest = rest[:i]
	}
	if i := strings.IndexByte(rest, '@'); i >= 0 {
		u.User = rest[:i]
		rest = rest[i+1:]
	}
	if rest == "" {
		return fmt.Errorf("sip: uri %q: empty host", s)
	}
	host, port, err := splitHostPort(rest)
	if err != nil {
		return fmt.Errorf("sip: uri %q: %v", s, err)
	}
	if !validHost(host) {
		return fmt.Errorf("sip: uri %q: invalid host %q", s, host)
	}
	if !validUser(u.User) {
		return fmt.Errorf("sip: uri %q: invalid user %q", s, u.User)
	}
	u.Host, u.Port = host, port
	return nil
}

// validHost accepts hostnames and dotted addresses: alphanumerics plus
// ".-_" (node IDs in the emulator follow the same shape).
func validHost(host string) bool {
	if host == "" {
		return false
	}
	for _, r := range host {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '-' || r == '_' || r == '*':
		default:
			return false
		}
	}
	return true
}

// validUser rejects characters that would break the name-addr and header
// syntax around the URI.
func validUser(user string) bool {
	return !strings.ContainsAny(user, `<>"@;, `+"\t\r\n")
}

// MustParseURI parses s or panics; for tests and static configuration only.
func MustParseURI(s string) *URI {
	u, err := ParseURI(s)
	if err != nil {
		panic(err)
	}
	return u
}

func splitHostPort(s string) (string, uint16, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return s, 0, nil
	}
	p, err := strconv.ParseUint(s[i+1:], 10, 16)
	if err != nil {
		return "", 0, fmt.Errorf("bad port %q", s[i+1:])
	}
	return s[:i], uint16(p), nil
}

func parseParams(s string) (map[string]string, error) {
	params := make(map[string]string)
	for len(s) > 0 {
		kv := s
		if i := strings.IndexByte(s, ';'); i >= 0 {
			kv, s = s[:i], s[i+1:]
		} else {
			s = ""
		}
		if kv == "" {
			continue
		}
		key, value := kv, ""
		if i := strings.IndexByte(kv, '='); i >= 0 {
			key, value = kv[:i], kv[i+1:]
		}
		key = strings.ToLower(strings.TrimSpace(key))
		if key == "" {
			continue // `;=` and friends carry no information
		}
		params[key] = strings.TrimSpace(value)
	}
	return params, nil
}

// appendParams appends ";key=value" pairs in sorted key order. Keys are
// sorted on a stack array (insertion sort — parameter counts are tiny), so
// the common marshal path allocates nothing here.
func appendParams(b []byte, params map[string]string) []byte {
	if len(params) == 0 {
		return b
	}
	var arr [8]string
	keys := arr[:0]
	for k := range params {
		if k != "" {
			keys = append(keys, k)
		}
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		b = append(b, ';')
		b = append(b, k...)
		if v := params[k]; v != "" {
			b = append(b, '=')
			b = append(b, v...)
		}
	}
	return b
}

// appendTo appends the wire form of the URI to b.
func (u *URI) appendTo(b []byte) []byte {
	b = append(b, u.Scheme...)
	b = append(b, ':')
	if u.User != "" {
		b = append(b, u.User...)
		b = append(b, '@')
	}
	b = append(b, u.Host...)
	if u.Port != 0 {
		b = append(b, ':')
		b = strconv.AppendUint(b, uint64(u.Port), 10)
	}
	return appendParams(b, u.Params)
}

// String renders the URI.
func (u *URI) String() string {
	return string(u.appendTo(nil))
}

// Clone returns a deep copy.
func (u *URI) Clone() *URI {
	if u == nil {
		return nil
	}
	c := *u
	if u.Params != nil {
		c.Params = make(map[string]string, len(u.Params))
		for k, v := range u.Params {
			c.Params[k] = v
		}
	}
	return &c
}

// AddressOfRecord returns the canonical user@host form used as SLP / registrar
// key, e.g. "alice@voicehoc.ch".
func (u *URI) AddressOfRecord() string {
	if u.User == "" {
		return u.Host
	}
	return u.User + "@" + u.Host
}

// PortOrDefault returns the explicit port or 5060.
func (u *URI) PortOrDefault() uint16 {
	if u.Port == 0 {
		return DefaultPort
	}
	return u.Port
}

// NameAddr is a name-addr header value: optional display name, URI in angle
// brackets, and header parameters (e.g. tag).
type NameAddr struct {
	Display string
	URI     *URI
	Params  map[string]string
}

// ParseNameAddr parses From/To/Contact/Route style values.
func ParseNameAddr(s string) (*NameAddr, error) {
	// The name-addr and its URI live in one heap block: every name-addr
	// owns exactly one URI, so a combined allocation halves the count on
	// the From/To/Contact hot path.
	block := &struct {
		na NameAddr
		u  URI
	}{}
	na := &block.na
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("sip: empty name-addr")
	}
	if strings.HasPrefix(s, `"`) {
		end := strings.Index(s[1:], `"`)
		if end < 0 {
			return nil, fmt.Errorf("sip: unterminated display name in %q", s)
		}
		na.Display = s[1 : 1+end]
		s = strings.TrimSpace(s[2+end:])
	}
	var uriStr, paramStr string
	if i := strings.IndexByte(s, '<'); i >= 0 {
		j := strings.IndexByte(s, '>')
		if j < i {
			return nil, fmt.Errorf("sip: malformed name-addr %q", s)
		}
		if na.Display == "" {
			na.Display = strings.TrimSpace(s[:i])
		}
		uriStr = s[i+1 : j]
		paramStr = strings.TrimPrefix(strings.TrimSpace(s[j+1:]), ";")
	} else {
		// addr-spec form: params after ';' belong to the header.
		if i := strings.IndexByte(s, ';'); i >= 0 {
			uriStr, paramStr = s[:i], s[i+1:]
		} else {
			uriStr = s
		}
	}
	if err := parseURIInto(&block.u, strings.TrimSpace(uriStr)); err != nil {
		return nil, err
	}
	na.URI = &block.u
	if paramStr != "" {
		params, err := parseParams(paramStr)
		if err != nil {
			return nil, err
		}
		na.Params = params
	}
	return na, nil
}

// appendTo appends the name-addr wire form to b: optional quoted display
// name, URI in angle brackets, then header params. Characters that would
// break the quoted display-name syntax (quotes, backslashes, CR/LF —
// header-injection vectors) are stripped.
func (n *NameAddr) appendTo(b []byte) []byte {
	if display := sanitizeDisplay(n.Display); display != "" {
		b = append(b, '"')
		b = append(b, display...)
		b = append(b, `" `...)
	}
	b = append(b, '<')
	b = n.URI.appendTo(b)
	b = append(b, '>')
	return appendParams(b, n.Params)
}

// String renders the name-addr with the URI in angle brackets.
func (n *NameAddr) String() string {
	return string(n.appendTo(nil))
}

func sanitizeDisplay(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '"', '\\', '\r', '\n':
			return -1
		default:
			return r
		}
	}, s)
}

// Clone returns a deep copy.
func (n *NameAddr) Clone() *NameAddr {
	if n == nil {
		return nil
	}
	c := &NameAddr{Display: n.Display, URI: n.URI.Clone()}
	if n.Params != nil {
		c.Params = make(map[string]string, len(n.Params))
		for k, v := range n.Params {
			c.Params[k] = v
		}
	}
	return c
}

// Tag returns the tag parameter ("" if absent).
func (n *NameAddr) Tag() string { return n.Params["tag"] }

// SetTag sets the tag parameter.
func (n *NameAddr) SetTag(tag string) {
	if n.Params == nil {
		n.Params = make(map[string]string, 1)
	}
	n.Params["tag"] = tag
}
