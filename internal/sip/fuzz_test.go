package sip

import (
	"testing"
)

// FuzzParse hammers the message parser: any input must either error or
// produce a message whose Marshal output reparses cleanly (no panics, no
// drift).
func FuzzParse(f *testing.F) {
	f.Add([]byte(sampleInvite))
	f.Add([]byte("SIP/2.0 200 OK\r\nVia: SIP/2.0/UDP h:5060;branch=z9hG4bK-1\r\n" +
		"From: <sip:a@h>;tag=1\r\nTo: <sip:b@h>;tag=2\r\nCall-ID: c\r\nCSeq: 1 INVITE\r\n\r\n"))
	f.Add([]byte("REGISTER sip:h SIP/2.0\r\nf: <sip:a@h>;tag=t\r\nt: <sip:a@h>\r\n" +
		"i: c\r\nCSeq: 1 REGISTER\r\nm: <sip:a@n:5062>\r\nExpires: 60\r\n\r\n"))
	f.Add([]byte("INVITE sip:x SIP/2.0\r\nContent-Length: 5\r\n\r\nabcde"))
	f.Add([]byte{0, 1, 2, 255})
	f.Add([]byte("OPTIONS sip:x@h SIP/2.0\r\nAuthorization: Digest username=\"u\", realm=\"r\"," +
		" nonce=\"n\", uri=\"sip:r\", response=\"x\", cnonce=\"c\", nc=00000001, qop=auth\r\n" +
		"From: <sip:a@h>;tag=t\r\nTo: <sip:x@h>\r\nCall-ID: c\r\nCSeq: 1 OPTIONS\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		wire := m.Marshal()
		m2, err := Parse(wire)
		if err != nil {
			t.Fatalf("marshal output unparseable: %v\ninput: %q\nwire: %q", err, data, wire)
		}
		// Second round trip must be a fixed point.
		wire2 := m2.Marshal()
		if string(wire) != string(wire2) {
			t.Fatalf("marshal not a fixed point:\n%q\n%q", wire, wire2)
		}
	})
}

// FuzzParseURI checks the URI parser never panics and that accepted URIs
// round-trip through String.
func FuzzParseURI(f *testing.F) {
	for _, s := range []string{
		"sip:alice@voicehoc.ch", "sips:b@h:5061", "sip:h;lr", "sip:@", "sip::", "",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		u, err := ParseURI(s)
		if err != nil {
			return
		}
		u2, err := ParseURI(u.String())
		if err != nil {
			t.Fatalf("canonical form unparseable: %q -> %q: %v", s, u.String(), err)
		}
		if u2.String() != u.String() {
			t.Fatalf("canonical form unstable: %q vs %q", u.String(), u2.String())
		}
	})
}

// FuzzParseNameAddr checks the name-addr parser.
func FuzzParseNameAddr(f *testing.F) {
	for _, s := range []string{
		`"Alice" <sip:a@h>;tag=1`, `<sip:b@h>`, `sip:c@h;tag=2`, `"unterminated <sip:x@y>`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		na, err := ParseNameAddr(s)
		if err != nil {
			return
		}
		if _, err := ParseNameAddr(na.String()); err != nil {
			t.Fatalf("canonical name-addr unparseable: %q -> %q: %v", s, na.String(), err)
		}
	})
}

// FuzzDigest checks the digest header parsers.
func FuzzDigest(f *testing.F) {
	f.Add(`Digest realm="r", nonce="n"`)
	f.Add(`Digest username="u", realm="r", nonce="n", uri="sip:r", response="x", cnonce="c", nc=00000001, qop=auth`)
	f.Add(`Digest nc=zzz`)
	f.Fuzz(func(t *testing.T, s string) {
		if c, err := ParseDigestChallenge(s); err == nil {
			if _, err := ParseDigestChallenge(c.String()); err != nil {
				t.Fatalf("challenge canonical form unparseable: %v", err)
			}
		}
		if a, err := ParseDigestCredentials(s); err == nil {
			if _, err := ParseDigestCredentials(a.String()); err != nil {
				t.Fatalf("credentials canonical form unparseable: %v", err)
			}
		}
	})
}
