package sip

import (
	"sort"
	"strconv"
	"sync"
)

// marshalBufPool recycles scratch buffers for Marshal so steady-state
// serialization costs one allocation: the exact-size result copy.
var marshalBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// maxPooledBuf bounds the scratch buffers the pool retains, so one huge
// message does not pin a huge buffer forever.
const maxPooledBuf = 64 << 10

// Marshal renders the message in SIP wire format with CRLF line endings and
// an accurate Content-Length.
func (m *Message) Marshal() []byte {
	bp := marshalBufPool.Get().(*[]byte)
	b := m.AppendTo((*bp)[:0])
	out := make([]byte, len(b))
	copy(out, b)
	if cap(b) <= maxPooledBuf {
		*bp = b
		marshalBufPool.Put(bp)
	}
	return out
}

// AppendTo appends the wire form of the message to b and returns the
// extended slice; callers that reuse buffers serialize with zero
// allocations.
func (m *Message) AppendTo(b []byte) []byte {
	if m.IsRequest() {
		b = append(b, m.Method...)
		b = append(b, ' ')
		b = m.RequestURI.appendTo(b)
		b = append(b, " SIP/2.0\r\n"...)
	} else {
		b = append(b, "SIP/2.0 "...)
		b = strconv.AppendInt(b, int64(m.StatusCode), 10)
		b = append(b, ' ')
		b = append(b, m.Reason...)
		b = append(b, "\r\n"...)
	}
	for _, v := range m.Via {
		b = append(b, "Via: "...)
		b = v.appendTo(b)
		b = append(b, "\r\n"...)
	}
	b = appendNameAddrHeader(b, "Route", m.Route)
	b = appendNameAddrHeader(b, "Record-Route", m.RecordRoute)
	if m.From != nil {
		b = append(b, "From: "...)
		b = m.From.appendTo(b)
		b = append(b, "\r\n"...)
	}
	if m.To != nil {
		b = append(b, "To: "...)
		b = m.To.appendTo(b)
		b = append(b, "\r\n"...)
	}
	if m.CallID != "" {
		b = append(b, "Call-ID: "...)
		b = append(b, m.CallID...)
		b = append(b, "\r\n"...)
	}
	if m.CSeq.Method != "" {
		b = append(b, "CSeq: "...)
		b = m.CSeq.appendTo(b)
		b = append(b, "\r\n"...)
	}
	for _, c := range m.Contact {
		b = append(b, "Contact: "...)
		if c.Display == "*" {
			b = append(b, '*')
		} else {
			b = c.appendTo(b)
		}
		b = append(b, "\r\n"...)
	}
	if m.MaxForwards >= 0 {
		b = append(b, "Max-Forwards: "...)
		b = strconv.AppendInt(b, int64(m.MaxForwards), 10)
		b = append(b, "\r\n"...)
	}
	if m.Expires >= 0 {
		b = append(b, "Expires: "...)
		b = strconv.AppendInt(b, int64(m.Expires), 10)
		b = append(b, "\r\n"...)
	}
	if m.UserAgent != "" {
		b = append(b, "User-Agent: "...)
		b = append(b, m.UserAgent...)
		b = append(b, "\r\n"...)
	}
	if m.ContentType != "" {
		b = append(b, "Content-Type: "...)
		b = append(b, m.ContentType...)
		b = append(b, "\r\n"...)
	}
	// Unknown headers in deterministic order.
	if len(m.Other) > 0 {
		keys := make([]string, 0, len(m.Other))
		for k := range m.Other {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			for _, v := range m.Other[k] {
				b = append(b, k...)
				b = append(b, ": "...)
				b = append(b, v...)
				b = append(b, "\r\n"...)
			}
		}
	}
	b = append(b, "Content-Length: "...)
	b = strconv.AppendInt(b, int64(len(m.Body)), 10)
	b = append(b, "\r\n\r\n"...)
	b = append(b, m.Body...)
	return b
}

func appendNameAddrHeader(b []byte, name string, nas []*NameAddr) []byte {
	if len(nas) == 0 {
		return b
	}
	b = append(b, name...)
	b = append(b, ": "...)
	for i, na := range nas {
		if i > 0 {
			b = append(b, ", "...)
		}
		b = na.appendTo(b)
	}
	return append(b, "\r\n"...)
}

// String renders the start line plus key headers, for logs and experiment
// output.
func (m *Message) String() string {
	if m.IsRequest() {
		return m.Method + " " + m.RequestURI.String()
	}
	return strconv.Itoa(m.StatusCode) + " " + m.Reason
}
