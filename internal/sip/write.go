package sip

import (
	"sort"
	"strconv"
	"strings"
)

// Marshal renders the message in SIP wire format with CRLF line endings and
// an accurate Content-Length.
func (m *Message) Marshal() []byte {
	var b strings.Builder
	b.Grow(512 + len(m.Body))
	if m.IsRequest() {
		b.WriteString(m.Method)
		b.WriteByte(' ')
		b.WriteString(m.RequestURI.String())
		b.WriteString(" SIP/2.0\r\n")
	} else {
		b.WriteString("SIP/2.0 ")
		b.WriteString(strconv.Itoa(m.StatusCode))
		b.WriteByte(' ')
		b.WriteString(m.Reason)
		b.WriteString("\r\n")
	}
	for _, v := range m.Via {
		writeHeader(&b, "Via", v.String())
	}
	if len(m.Route) > 0 {
		writeHeader(&b, "Route", joinNameAddrs(m.Route))
	}
	if len(m.RecordRoute) > 0 {
		writeHeader(&b, "Record-Route", joinNameAddrs(m.RecordRoute))
	}
	if m.From != nil {
		writeHeader(&b, "From", m.From.String())
	}
	if m.To != nil {
		writeHeader(&b, "To", m.To.String())
	}
	if m.CallID != "" {
		writeHeader(&b, "Call-ID", m.CallID)
	}
	if m.CSeq.Method != "" {
		writeHeader(&b, "CSeq", m.CSeq.String())
	}
	for _, c := range m.Contact {
		if c.Display == "*" {
			writeHeader(&b, "Contact", "*")
		} else {
			writeHeader(&b, "Contact", c.String())
		}
	}
	if m.MaxForwards >= 0 {
		writeHeader(&b, "Max-Forwards", strconv.Itoa(m.MaxForwards))
	}
	if m.Expires >= 0 {
		writeHeader(&b, "Expires", strconv.Itoa(m.Expires))
	}
	if m.UserAgent != "" {
		writeHeader(&b, "User-Agent", m.UserAgent)
	}
	if m.ContentType != "" {
		writeHeader(&b, "Content-Type", m.ContentType)
	}
	// Unknown headers in deterministic order.
	if len(m.Other) > 0 {
		keys := make([]string, 0, len(m.Other))
		for k := range m.Other {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			for _, v := range m.Other[k] {
				writeHeader(&b, k, v)
			}
		}
	}
	writeHeader(&b, "Content-Length", strconv.Itoa(len(m.Body)))
	b.WriteString("\r\n")
	b.Write(m.Body)
	return []byte(b.String())
}

func writeHeader(b *strings.Builder, name, value string) {
	b.WriteString(name)
	b.WriteString(": ")
	b.WriteString(value)
	b.WriteString("\r\n")
}

func joinNameAddrs(nas []*NameAddr) string {
	parts := make([]string, len(nas))
	for i, na := range nas {
		parts[i] = na.String()
	}
	return strings.Join(parts, ", ")
}

// String renders the start line plus key headers, for logs and experiment
// output.
func (m *Message) String() string {
	if m.IsRequest() {
		return m.Method + " " + m.RequestURI.String()
	}
	return strconv.Itoa(m.StatusCode) + " " + m.Reason
}
