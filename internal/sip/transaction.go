package sip

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"siphoc/internal/obs"
)

// ClientTx is a client transaction (RFC 3261 §17.1): it retransmits the
// request over the unreliable transport until a response arrives or the
// transaction times out, and delivers responses to the TU.
type ClientTx struct {
	stack *Stack
	key   string
	req   *Message
	dst   Addr

	mu         sync.Mutex
	finalSent  bool
	terminated bool
	retrans    int
	// lastProv stamps the most recent provisional response. For INVITE it
	// moves the transaction to Proceeding: retransmissions stop and the
	// Timer B deadline is re-armed from it (RFC 3261 §17.1.1.2).
	lastProv  time.Time
	responses chan *Message
	done      chan struct{}
	doneOnce  sync.Once

	// span traces this leg (INVITE only, observer enabled only); the zero
	// handle no-ops.
	span obs.SpanHandle
}

// ErrTimeout is delivered as a synthetic 408 response when a client
// transaction expires without any response.
var ErrTimeout = fmt.Errorf("sip: transaction timeout")

// localTimeoutReason marks the synthetic 408 a client transaction delivers
// when it expires without any network response.
const localTimeoutReason = "Request Timeout (local)"

// IsLocalTimeout reports whether m is the synthetic 408 generated locally on
// client-transaction expiry — the next hop never answered — as opposed to a
// 408 answered by the peer. Proxies use this to tell a dead route from a
// slow callee.
func (m *Message) IsLocalTimeout() bool {
	return m.StatusCode == StatusRequestTimeout && m.Reason == localTimeoutReason
}

func newClientTx(s *Stack, req *Message, dst Addr) *ClientTx {
	return &ClientTx{
		stack:     s,
		key:       req.TransactionKey(),
		req:       req,
		dst:       dst,
		responses: make(chan *Message, 8),
		done:      make(chan struct{}),
	}
}

// Request returns the request as sent (with this stack's Via on top).
func (tx *ClientTx) Request() *Message { return tx.req }

// Responses delivers provisional and final responses in arrival order. The
// channel is closed when the transaction terminates. On timeout a synthetic
// 408 with Reason "Request Timeout (local)" is delivered.
func (tx *ClientTx) Responses() <-chan *Message { return tx.responses }

// Done is closed when the transaction terminates.
func (tx *ClientTx) Done() <-chan struct{} { return tx.done }

// Await blocks until a final (>=200) response or transaction termination and
// returns it; provisional responses are discarded.
func (tx *ClientTx) Await() (*Message, error) {
	for m := range tx.responses {
		if m.StatusCode >= 200 {
			return m, nil
		}
	}
	return nil, ErrTimeout
}

// AwaitWithProvisional blocks like Await but invokes onProv for each
// provisional response on the way (e.g. to surface 180 Ringing to the user).
func (tx *ClientTx) AwaitWithProvisional(onProv func(*Message)) (*Message, error) {
	for m := range tx.responses {
		if m.StatusCode >= 200 {
			return m, nil
		}
		if onProv != nil {
			onProv(m)
		}
	}
	return nil, ErrTimeout
}

func (tx *ClientTx) start() {
	s := tx.stack
	if s.obs != nil && tx.req.Method == MethodInvite {
		s.obsInvites.Inc()
		tx.span = s.obs.StartSpan(tx.req.CallID, obs.PhaseSIPLeg,
			string(s.self.Node)+"->"+string(tx.dst.Node))
	}
	if s.cfg.Sched != nil {
		tx.startSched()
		return
	}
	s.wg.Add(1)
	go tx.run()
}

// startSched transmits the request and arms the retransmission schedule as
// a chain of event-loop timer steps — the run() loop unrolled, one step per
// timer fire, with the loop state carried in the closure. Steps for one
// node share a shard key, so the chain is serialized with every other SIP
// timer on this node.
func (tx *ClientTx) startSched() {
	s := tx.stack
	raw := tx.req.Marshal()
	_ = s.conn.WriteTo(raw, tx.dst.Node, tx.dst.Port)

	key := string(s.self.Node)
	interval := s.cfg.T1
	deadline := s.clk.Now().Add(64 * s.cfg.T1) // Timer B / F
	proceeding := false
	var step func(time.Time)
	step = func(time.Time) {
		if s.isClosed() {
			tx.terminate()
			return
		}
		select {
		case <-tx.done:
			return
		default:
		}
		tx.mu.Lock()
		final, lastProv := tx.finalSent, tx.lastProv
		tx.mu.Unlock()
		if final {
			return
		}
		if tx.req.Method == MethodInvite && !lastProv.IsZero() {
			// Same Proceeding handling as run(): re-arm Timer B from the
			// latest provisional but keep retransmitting (see run()).
			proceeding = true
			if d := lastProv.Add(256 * s.cfg.T1); d.After(deadline) {
				deadline = d
			}
		}
		if !s.clk.Now().Before(deadline) {
			s.obsTimeouts.Inc()
			tx.endSpan("timeout")
			resp := NewResponse(tx.req, StatusRequestTimeout, localTimeoutReason)
			tx.deliver(resp)
			tx.terminate()
			return
		}
		_ = s.conn.WriteTo(raw, tx.dst.Node, tx.dst.Port)
		s.obsRetrans.Inc()
		tx.mu.Lock()
		tx.retrans++
		tx.mu.Unlock()
		interval *= 2
		if (tx.req.Method != MethodInvite || proceeding) && interval > s.cfg.T2 {
			interval = s.cfg.T2
		}
		s.cfg.Sched.After(key, interval, step)
	}
	s.cfg.Sched.After(key, interval, step)
}

// endSpan closes the leg span with the outcome and retransmit count. Callers
// hold the finalSent transition, so it runs at most once per transaction.
func (tx *ClientTx) endSpan(outcome string) {
	if !tx.span.Active() {
		return
	}
	tx.mu.Lock()
	n := tx.retrans
	tx.mu.Unlock()
	tx.span.End(outcome + " retrans=" + strconv.Itoa(n))
}

func (tx *ClientTx) run() {
	defer tx.stack.wg.Done()
	s := tx.stack
	raw := tx.req.Marshal()
	_ = s.conn.WriteTo(raw, tx.dst.Node, tx.dst.Port)

	interval := s.cfg.T1
	deadline := s.clk.Now().Add(64 * s.cfg.T1) // Timer B / F
	proceeding := false
	for {
		timer := s.clk.NewTimer(interval)
		select {
		case <-s.stop:
			timer.Stop()
			tx.terminate()
			return
		case <-tx.done:
			timer.Stop()
			return
		case <-timer.C():
		}
		tx.mu.Lock()
		final, lastProv := tx.finalSent, tx.lastProv
		tx.mu.Unlock()
		if final {
			return
		}
		if tx.req.Method == MethodInvite && !lastProv.IsZero() {
			// Proceeding: a provisional means the next hop is alive, so
			// re-arm the Timer B deadline from the latest provisional
			// rather than giving up mid-setup — upstream proxies refresh
			// it with 100 Trying while they retry a dead route. Unlike RFC
			// 3261 §17.1.1.2 we keep retransmitting: the downstream server
			// transaction replays its recorded final on each retransmitted
			// request, which is how a 200 OK lost on the radio is
			// recovered.
			proceeding = true
			if d := lastProv.Add(256 * s.cfg.T1); d.After(deadline) {
				deadline = d
			}
		}
		if !s.clk.Now().Before(deadline) {
			// Timeout: synthesize a 408 so callers see a final answer.
			s.obsTimeouts.Inc()
			tx.endSpan("timeout")
			resp := NewResponse(tx.req, StatusRequestTimeout, localTimeoutReason)
			tx.deliver(resp)
			tx.terminate()
			return
		}
		_ = s.conn.WriteTo(raw, tx.dst.Node, tx.dst.Port)
		s.obsRetrans.Inc()
		tx.mu.Lock()
		tx.retrans++
		tx.mu.Unlock()
		interval *= 2
		if (tx.req.Method != MethodInvite || proceeding) && interval > s.cfg.T2 {
			interval = s.cfg.T2
		}
	}
}

func (tx *ClientTx) onResponse(m *Message) {
	tx.mu.Lock()
	if tx.finalSent {
		tx.mu.Unlock()
		return // absorb retransmitted finals
	}
	final := m.StatusCode >= 200
	if final {
		tx.finalSent = true
	} else {
		tx.lastProv = tx.stack.clk.Now()
	}
	tx.mu.Unlock()
	if final {
		tx.endSpan("final=" + strconv.Itoa(m.StatusCode))
	}
	tx.deliver(m)
	if !final {
		return
	}
	// INVITE with non-2xx final: transaction-level ACK (RFC 3261
	// §17.1.1.3), sent to the same destination as the INVITE.
	if tx.req.Method == MethodInvite && m.StatusCode >= 300 {
		ack := buildTxAck(tx.req, m)
		_ = tx.stack.Send(ack, tx.dst)
	}
	// Linger briefly (Timer D/K) so retransmitted finals are absorbed,
	// then terminate.
	s := tx.stack
	if s.cfg.Sched != nil {
		s.cfg.Sched.After(string(s.self.Node), 4*s.cfg.T1, func(time.Time) { tx.terminate() })
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		timer := s.clk.NewTimer(4 * s.cfg.T1)
		select {
		case <-s.stop:
			timer.Stop()
		case <-timer.C():
		}
		tx.terminate()
	}()
}

func (tx *ClientTx) deliver(m *Message) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.terminated {
		return // the channel is closed or closing
	}
	select {
	case tx.responses <- m:
	default:
		// TU is not draining; dropping beats blocking the stack.
	}
}

func (tx *ClientTx) terminate() {
	tx.doneOnce.Do(func() {
		tx.stack.removeClientTx(tx.key)
		// Order matters: mark terminated under the mutex so no deliver
		// can be mid-send when the channel closes.
		tx.mu.Lock()
		tx.terminated = true
		tx.mu.Unlock()
		close(tx.done)
		close(tx.responses)
	})
}

// buildTxAck constructs the transaction-level ACK for a non-2xx INVITE
// response (RFC 3261 §17.1.1.3): same branch and headers as the INVITE, To
// from the response.
func buildTxAck(invite, resp *Message) *Message {
	ack := NewRequest(MethodAck, invite.RequestURI.Clone())
	ack.Via = []*Via{invite.Via[0].clone()}
	ack.From = invite.From.Clone()
	ack.To = resp.To.Clone()
	ack.CallID = invite.CallID
	ack.CSeq = CSeq{Seq: invite.CSeq.Seq, Method: MethodAck}
	ack.Route = cloneNameAddrs(invite.Route)
	return ack
}

// ServerTx is a server transaction (RFC 3261 §17.2): it absorbs request
// retransmissions by replaying the last response and expires after 64×T1.
type ServerTx struct {
	stack *Stack
	key   string
	req   *Message
	src   Addr
	// ackOnly marks synthetic transactions wrapping a 2xx ACK, which
	// never send responses.
	ackOnly bool

	mu       sync.Mutex
	lastResp []byte
	acked    bool
	finished bool
}

func newServerTx(s *Stack, req *Message, src Addr, ackOnly bool) *ServerTx {
	return &ServerTx{
		stack:   s,
		key:     req.TransactionKey(),
		req:     req,
		src:     src,
		ackOnly: ackOnly,
	}
}

// Request returns the triggering request.
func (tx *ServerTx) Request() *Message { return tx.req }

// Source returns the transport address the request arrived from — where
// responses must be sent (RFC 3261 §18.2.2 "received" behaviour).
func (tx *ServerTx) Source() Addr { return tx.src }

// Respond sends a response built by the TU. Final responses are recorded so
// request retransmissions are answered without bothering the TU again.
func (tx *ServerTx) Respond(resp *Message) error {
	if tx.ackOnly {
		return fmt.Errorf("sip: ACK takes no response")
	}
	raw := resp.Marshal()
	tx.mu.Lock()
	if resp.StatusCode >= 200 {
		tx.lastResp = raw
	}
	tx.mu.Unlock()
	return tx.stack.conn.WriteTo(raw, tx.src.Node, tx.src.Port)
}

// RespondCode is a convenience wrapper building a response from the request.
func (tx *ServerTx) RespondCode(code int, reason string) error {
	resp := NewResponse(tx.req, code, reason)
	if code > 100 && tx.req.To.Tag() == "" {
		resp.To.SetTag(tx.stack.NewTag())
	}
	return tx.Respond(resp)
}

// Acked reports whether an ACK for this (INVITE) transaction arrived.
func (tx *ServerTx) Acked() bool {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.acked
}

// onRequest handles retransmissions and transaction-level ACKs.
func (tx *ServerTx) onRequest(m *Message) {
	if m.Method == MethodAck {
		tx.mu.Lock()
		tx.acked = true
		tx.mu.Unlock()
		return
	}
	tx.mu.Lock()
	raw := tx.lastResp
	tx.mu.Unlock()
	if raw != nil {
		_ = tx.stack.conn.WriteTo(raw, tx.src.Node, tx.src.Port)
	}
}

// scheduleExpiry arms the transaction lifetime (Timer J/H analogue). A
// transaction still awaiting the TU's final response is kept alive — the
// Proceeding state has no expiry (RFC 3261 §17.2.1) — so request
// retransmissions keep hitting the same transaction while a proxy is off
// retrying a dead route, instead of spawning a duplicate routing attempt.
func (tx *ServerTx) scheduleExpiry() {
	s := tx.stack
	if s.cfg.Sched != nil {
		key := string(s.self.Node)
		var step func(time.Time)
		step = func(time.Time) {
			tx.mu.Lock()
			done := tx.lastResp != nil || tx.ackOnly
			tx.mu.Unlock()
			if !done && !s.isClosed() {
				// Proceeding: no expiry while the TU still owes a final.
				s.cfg.Sched.After(key, 64*s.cfg.T1, step)
				return
			}
			tx.mu.Lock()
			tx.finished = true
			tx.mu.Unlock()
			s.removeServerTx(tx.key)
		}
		s.cfg.Sched.After(key, 64*s.cfg.T1, step)
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			timer := s.clk.NewTimer(64 * s.cfg.T1)
			select {
			case <-s.stop:
				timer.Stop()
			case <-timer.C():
				tx.mu.Lock()
				done := tx.lastResp != nil || tx.ackOnly
				tx.mu.Unlock()
				if !done {
					continue
				}
			}
			tx.mu.Lock()
			tx.finished = true
			tx.mu.Unlock()
			s.removeServerTx(tx.key)
			return
		}
	}()
}
