package sip

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const sampleInvite = "INVITE sip:bob@voicehoc.ch SIP/2.0\r\n" +
	"Via: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK-abc\r\n" +
	"Via: SIP/2.0/UDP 10.0.0.2:5062;branch=z9hG4bK-def;received=10.0.0.2\r\n" +
	"From: \"Alice\" <sip:alice@voicehoc.ch>;tag=1928\r\n" +
	"To: <sip:bob@voicehoc.ch>\r\n" +
	"Call-ID: a84b4c76e66710@10.0.0.1\r\n" +
	"CSeq: 314159 INVITE\r\n" +
	"Contact: <sip:alice@10.0.0.1:5062>\r\n" +
	"Max-Forwards: 70\r\n" +
	"Content-Type: application/sdp\r\n" +
	"Content-Length: 4\r\n" +
	"\r\n" +
	"v=0\r\n"

func TestParseInvite(t *testing.T) {
	m, err := Parse([]byte(sampleInvite))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsRequest() || m.Method != MethodInvite {
		t.Fatalf("method = %q", m.Method)
	}
	if m.RequestURI.AddressOfRecord() != "bob@voicehoc.ch" {
		t.Fatalf("ruri = %v", m.RequestURI)
	}
	if len(m.Via) != 2 {
		t.Fatalf("via count = %d", len(m.Via))
	}
	if m.Via[0].Branch() != "z9hG4bK-abc" || m.Via[0].Port != 5060 {
		t.Fatalf("top via = %+v", m.Via[0])
	}
	if m.From.Display != "Alice" || m.From.Tag() != "1928" {
		t.Fatalf("from = %+v", m.From)
	}
	if m.To.Tag() != "" {
		t.Fatalf("to tag = %q", m.To.Tag())
	}
	if m.CSeq.Seq != 314159 || m.CSeq.Method != MethodInvite {
		t.Fatalf("cseq = %+v", m.CSeq)
	}
	if m.MaxForwards != 70 {
		t.Fatalf("max-forwards = %d", m.MaxForwards)
	}
	if string(m.Body) != "v=0\r" { // Content-Length 4 truncates the LF
		t.Fatalf("body = %q", m.Body)
	}
}

func TestParseCompactForms(t *testing.T) {
	raw := "OPTIONS sip:x@h SIP/2.0\r\n" +
		"v: SIP/2.0/UDP h:5060;branch=z9hG4bK-1\r\n" +
		"f: <sip:a@h>;tag=t1\r\n" +
		"t: <sip:x@h>\r\n" +
		"i: id1@h\r\n" +
		"CSeq: 1 OPTIONS\r\n" +
		"l: 0\r\n\r\n"
	m, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if m.CallID != "id1@h" || m.From.Tag() != "t1" {
		t.Fatalf("compact parse: %+v", m)
	}
}

func TestParseResponse(t *testing.T) {
	raw := "SIP/2.0 180 Ringing\r\n" +
		"Via: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK-x\r\n" +
		"From: <sip:a@h>;tag=1\r\nTo: <sip:b@h>;tag=2\r\n" +
		"Call-ID: c1\r\nCSeq: 2 INVITE\r\nContent-Length: 0\r\n\r\n"
	m, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsResponse() || m.StatusCode != 180 || m.Reason != "Ringing" {
		t.Fatalf("response = %+v", m)
	}
	if m.TransactionKey() != "z9hG4bK-x|INVITE" {
		t.Fatalf("txkey = %q", m.TransactionKey())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"garbage":          "hello world",
		"bad status":       "SIP/2.0 abc Oops\r\n\r\n",
		"missing from":     "OPTIONS sip:x@h SIP/2.0\r\nTo: <sip:x@h>\r\nCall-ID: 1\r\nCSeq: 1 OPTIONS\r\n\r\n",
		"missing callid":   "OPTIONS sip:x@h SIP/2.0\r\nFrom: <sip:a@h>\r\nTo: <sip:x@h>\r\nCSeq: 1 OPTIONS\r\n\r\n",
		"cseq mismatch":    "OPTIONS sip:x@h SIP/2.0\r\nFrom: <sip:a@h>\r\nTo: <sip:x@h>\r\nCall-ID: 1\r\nCSeq: 1 INVITE\r\n\r\n",
		"bad content len":  "OPTIONS sip:x@h SIP/2.0\r\nFrom: <sip:a@h>\r\nTo: <sip:x@h>\r\nCall-ID: 1\r\nCSeq: 1 OPTIONS\r\nContent-Length: 99\r\n\r\nshort",
		"bad via protocol": "OPTIONS sip:x@h SIP/2.0\r\nVia: HTTP/1.1 x\r\nFrom: <sip:a@h>\r\nTo: <sip:x@h>\r\nCall-ID: 1\r\nCSeq: 1 OPTIONS\r\n\r\n",
		"bad uri":          "OPTIONS mailto:x@h SIP/2.0\r\nFrom: <sip:a@h>\r\nTo: <sip:x@h>\r\nCall-ID: 1\r\nCSeq: 1 OPTIONS\r\n\r\n",
	}
	for name, raw := range cases {
		if _, err := Parse([]byte(raw)); err == nil {
			t.Errorf("%s: parse accepted %q", name, raw)
		}
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	m, err := Parse([]byte(sampleInvite))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Parse(m.Marshal())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatalf("round trip drift:\n%+v\n%+v", m, m2)
	}
}

func TestURIRoundTrip(t *testing.T) {
	cases := []string{
		"sip:alice@voicehoc.ch",
		"sip:alice@voicehoc.ch:5062",
		"sip:voicehoc.ch",
		"sips:bob@secure.example:5061",
		"sip:carol@h;transport=udp;lr",
	}
	for _, s := range cases {
		u, err := ParseURI(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		u2, err := ParseURI(u.String())
		if err != nil {
			t.Fatalf("%s reparse: %v", u.String(), err)
		}
		if !reflect.DeepEqual(u, u2) {
			t.Fatalf("uri drift: %+v vs %+v", u, u2)
		}
	}
}

func TestURIErrors(t *testing.T) {
	for _, s := range []string{"", "bob@h", "sip:", "sip:a@h:notaport"} {
		if _, err := ParseURI(s); err == nil {
			t.Errorf("ParseURI(%q) accepted", s)
		}
	}
}

func TestNameAddrForms(t *testing.T) {
	cases := []struct {
		in      string
		display string
		aor     string
		tag     string
	}{
		{`"Alice Liddell" <sip:alice@h>;tag=9`, "Alice Liddell", "alice@h", "9"},
		{`<sip:bob@h:5070>`, "", "bob@h", ""},
		{`sip:carol@h;tag=3`, "", "carol@h", "3"},
		{`Bob <sip:bob@h>`, "Bob", "bob@h", ""},
	}
	for _, c := range cases {
		na, err := ParseNameAddr(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if na.Display != c.display || na.URI.AddressOfRecord() != c.aor || na.Tag() != c.tag {
			t.Fatalf("%q parsed to %+v", c.in, na)
		}
		// Round trip through canonical form.
		na2, err := ParseNameAddr(na.String())
		if err != nil || !reflect.DeepEqual(na, na2) {
			t.Fatalf("%q canonical drift: %+v vs %+v (%v)", c.in, na, na2, err)
		}
	}
}

func TestSplitTopLevel(t *testing.T) {
	in := `"Doe, John" <sip:j@h>;tag=1, <sip:k@h>`
	got := splitTopLevel(in)
	if len(got) != 2 || !strings.Contains(got[0], "Doe, John") {
		t.Fatalf("split = %#v", got)
	}
}

// TestQuickRequestRoundTrip builds random-ish requests from constrained
// components and asserts Marshal→Parse is the identity.
func TestQuickRequestRoundTrip(t *testing.T) {
	sanitize := func(s string, max int) string {
		var b strings.Builder
		for _, r := range s {
			if r > ' ' && r < 127 && !strings.ContainsRune(`<>"@;:,=`, r) {
				b.WriteRune(r)
			}
		}
		out := b.String()
		if out == "" {
			out = "x"
		}
		if len(out) > max {
			out = out[:max]
		}
		return out
	}
	// Hosts must stay within validHost's alphabet (alnum and ".-_"),
	// otherwise re-parsing correctly rejects the URI and the round trip
	// fails for reasons unrelated to the codec.
	sanitizeHost := func(s string, max int) string {
		var b strings.Builder
		for _, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
				b.WriteRune(r)
			case r == '.' || r == '-' || r == '_':
				b.WriteRune(r)
			}
		}
		out := b.String()
		if out == "" {
			out = "x"
		}
		if len(out) > max {
			out = out[:max]
		}
		return out
	}
	f := func(user, host, fromUser, callSuffix string, seq uint32, body []byte) bool {
		user, host = sanitize(user, 30), sanitizeHost(host, 30)
		fromUser, callSuffix = sanitize(fromUser, 30), sanitize(callSuffix, 30)
		m := NewRequest(MethodInvite, &URI{Scheme: "sip", User: user, Host: host})
		m.Via = []*Via{{Transport: "UDP", Host: host, Port: 5060,
			Params: map[string]string{"branch": BranchPrefix + "-q"}}}
		m.From = &NameAddr{URI: &URI{Scheme: "sip", User: fromUser, Host: host},
			Params: map[string]string{"tag": "t1"}}
		m.To = &NameAddr{URI: &URI{Scheme: "sip", User: user, Host: host}}
		m.CallID = "c-" + callSuffix
		m.CSeq = CSeq{Seq: seq, Method: MethodInvite}
		m.Body = body
		if len(body) > 0 {
			m.ContentType = "application/octet-stream"
		}
		m2, err := Parse(m.Marshal())
		if err != nil {
			t.Logf("parse failed for %q: %v", m.Marshal(), err)
			return false
		}
		if len(m.Body) == 0 && len(m2.Body) == 0 {
			m.Body, m2.Body = nil, nil
		}
		return reflect.DeepEqual(m, m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestNewResponseCopiesIdentity(t *testing.T) {
	req, err := Parse([]byte(sampleInvite))
	if err != nil {
		t.Fatal(err)
	}
	resp := NewResponse(req, StatusRinging, "")
	if resp.Reason != "Ringing" {
		t.Fatalf("reason = %q", resp.Reason)
	}
	if resp.CallID != req.CallID || resp.CSeq != req.CSeq {
		t.Fatal("identity headers not copied")
	}
	if len(resp.Via) != len(req.Via) {
		t.Fatal("via stack not copied")
	}
	// Mutating the response must not affect the request.
	resp.Via[0].Params["branch"] = "changed"
	if req.Via[0].Branch() == "changed" {
		t.Fatal("response shares Via storage with request")
	}
}

func TestAddrParse(t *testing.T) {
	a, err := ParseAddr("10.0.0.1:5062")
	if err != nil || a.Node != "10.0.0.1" || a.Port != 5062 {
		t.Fatalf("a = %+v, %v", a, err)
	}
	b, err := ParseAddr("proxy.example")
	if err != nil || b.Port != DefaultPort {
		t.Fatalf("b = %+v, %v", b, err)
	}
}
