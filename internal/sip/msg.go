// Package sip implements the subset of the Session Initiation Protocol
// (RFC 3261) the system needs: message parsing and serialization, client and
// server transactions with retransmission over the unreliable MANET
// transport, and helpers for proxying and registration. It is the substrate
// under the paper's per-node SIPHoc proxy and the simulated Internet SIP
// providers, and it is what lets out-of-the-box VoIP applications
// interoperate with the middleware unchanged.
package sip

import (
	"fmt"
	"strconv"
	"strings"

	"siphoc/internal/netem"
)

// Request methods used by the system.
const (
	MethodRegister = "REGISTER"
	MethodInvite   = "INVITE"
	MethodAck      = "ACK"
	MethodBye      = "BYE"
	MethodCancel   = "CANCEL"
	MethodOptions  = "OPTIONS"
)

// Common status codes.
const (
	StatusTrying             = 100
	StatusRinging            = 180
	StatusOK                 = 200
	StatusBadRequest         = 400
	StatusUnauthorized       = 401
	StatusNotFound           = 404
	StatusRequestTimeout     = 408
	StatusTemporarilyUnavail = 480
	StatusCallDoesNotExist   = 481
	StatusLoopDetected       = 482
	StatusTooManyHops        = 483
	StatusBusyHere           = 486
	StatusRequestTerminated  = 487
	StatusInternalError      = 500
	StatusServiceUnavail     = 503
	StatusDeclined           = 603
)

// ReasonPhrase returns the canonical reason phrase for a status code.
func ReasonPhrase(code int) string {
	switch code {
	case StatusTrying:
		return "Trying"
	case StatusRinging:
		return "Ringing"
	case StatusOK:
		return "OK"
	case StatusBadRequest:
		return "Bad Request"
	case StatusUnauthorized:
		return "Unauthorized"
	case StatusNotFound:
		return "Not Found"
	case StatusRequestTimeout:
		return "Request Timeout"
	case StatusTemporarilyUnavail:
		return "Temporarily Unavailable"
	case StatusCallDoesNotExist:
		return "Call/Transaction Does Not Exist"
	case StatusLoopDetected:
		return "Loop Detected"
	case StatusTooManyHops:
		return "Too Many Hops"
	case StatusBusyHere:
		return "Busy Here"
	case StatusRequestTerminated:
		return "Request Terminated"
	case StatusInternalError:
		return "Server Internal Error"
	case StatusServiceUnavail:
		return "Service Unavailable"
	case StatusDeclined:
		return "Decline"
	default:
		return "Unknown"
	}
}

// Addr is a transport address on the emulated network: node plus UDP port.
type Addr struct {
	Node netem.NodeID
	Port uint16
}

// String renders host:port.
func (a Addr) String() string {
	return fmt.Sprintf("%s:%d", a.Node, a.Port)
}

// ParseAddr parses "host:port" (port defaults to 5060).
func ParseAddr(s string) (Addr, error) {
	host, port, err := splitHostPort(s)
	if err != nil {
		return Addr{}, err
	}
	if port == 0 {
		port = DefaultPort
	}
	return Addr{Node: netem.NodeID(host), Port: port}, nil
}

// Via is one Via header entry recording a hop the request traversed.
type Via struct {
	Transport string // "UDP"
	Host      string
	Port      uint16
	Params    map[string]string // branch, received, ...
}

// BranchPrefix is the RFC 3261 magic cookie for Via branch parameters.
const BranchPrefix = "z9hG4bK"

// Branch returns the branch parameter.
func (v *Via) Branch() string { return v.Params["branch"] }

// SentBy returns the transport address encoded in the Via.
func (v *Via) SentBy() Addr {
	port := v.Port
	if port == 0 {
		port = DefaultPort
	}
	return Addr{Node: netem.NodeID(v.Host), Port: port}
}

// appendTo appends "SIP/2.0/UDP host:port;params" to b.
func (v *Via) appendTo(b []byte) []byte {
	b = append(b, "SIP/2.0/"...)
	b = append(b, v.Transport...)
	b = append(b, ' ')
	b = append(b, v.Host...)
	if v.Port != 0 {
		b = append(b, ':')
		b = strconv.AppendUint(b, uint64(v.Port), 10)
	}
	return appendParams(b, v.Params)
}

// String renders "SIP/2.0/UDP host:port;params".
func (v *Via) String() string {
	return string(v.appendTo(nil))
}

func (v *Via) clone() *Via {
	c := *v
	if v.Params != nil {
		c.Params = make(map[string]string, len(v.Params))
		for k, val := range v.Params {
			c.Params[k] = val
		}
	}
	return &c
}

// ParseVia parses one Via header value.
func ParseVia(s string) (*Via, error) {
	s = strings.TrimSpace(s)
	const pre = "SIP/2.0/"
	if !strings.HasPrefix(s, pre) {
		return nil, fmt.Errorf("sip: via %q: bad protocol", s)
	}
	s = s[len(pre):]
	sp := strings.IndexByte(s, ' ')
	if sp < 0 {
		return nil, fmt.Errorf("sip: via %q: missing sent-by", s)
	}
	v := &Via{Transport: s[:sp]}
	if !isToken(v.Transport) {
		return nil, fmt.Errorf("sip: via %q: bad transport", s)
	}
	rest := strings.TrimSpace(s[sp+1:])
	if i := strings.IndexByte(rest, ';'); i >= 0 {
		params, err := parseParams(rest[i+1:])
		if err != nil {
			return nil, err
		}
		v.Params = params
		rest = rest[:i]
	}
	host, port, err := splitHostPort(strings.TrimSpace(rest))
	if err != nil {
		return nil, err
	}
	if !validHost(host) {
		return nil, fmt.Errorf("sip: via %q: bad sent-by host", s)
	}
	v.Host, v.Port = host, port
	return v, nil
}

// CSeq is the CSeq header: sequence number plus method.
type CSeq struct {
	Seq    uint32
	Method string
}

// appendTo appends "1 INVITE" to b.
func (c CSeq) appendTo(b []byte) []byte {
	b = strconv.AppendUint(b, uint64(c.Seq), 10)
	b = append(b, ' ')
	return append(b, c.Method...)
}

// String renders "1 INVITE".
func (c CSeq) String() string { return string(c.appendTo(nil)) }

// Message is a SIP request or response.
type Message struct {
	// Request fields (Method != "" marks a request).
	Method     string
	RequestURI *URI

	// Response fields.
	StatusCode int
	Reason     string

	Via         []*Via // topmost first
	From        *NameAddr
	To          *NameAddr
	Contact     []*NameAddr
	Route       []*NameAddr
	RecordRoute []*NameAddr
	CallID      string
	CSeq        CSeq
	MaxForwards int // -1 when absent
	Expires     int // -1 when absent
	ContentType string
	UserAgent   string

	// Other carries headers this implementation does not interpret,
	// preserved across proxying (canonical-cased keys).
	Other map[string][]string

	Body []byte
}

// IsRequest reports whether the message is a request.
func (m *Message) IsRequest() bool { return m.Method != "" }

// IsResponse reports whether the message is a response.
func (m *Message) IsResponse() bool { return m.Method == "" }

// TopVia returns the first Via entry, or nil.
func (m *Message) TopVia() *Via {
	if len(m.Via) == 0 {
		return nil
	}
	return m.Via[0]
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	c := *m
	c.Via = make([]*Via, len(m.Via))
	for i, v := range m.Via {
		c.Via[i] = v.clone()
	}
	c.RequestURI = m.RequestURI.Clone()
	c.From = m.From.Clone()
	c.To = m.To.Clone()
	c.Contact = cloneNameAddrs(m.Contact)
	c.Route = cloneNameAddrs(m.Route)
	c.RecordRoute = cloneNameAddrs(m.RecordRoute)
	if m.Other != nil {
		c.Other = make(map[string][]string, len(m.Other))
		for k, vs := range m.Other {
			c.Other[k] = append([]string(nil), vs...)
		}
	}
	c.Body = append([]byte(nil), m.Body...)
	return &c
}

func cloneNameAddrs(in []*NameAddr) []*NameAddr {
	if in == nil {
		return nil
	}
	out := make([]*NameAddr, len(in))
	for i, n := range in {
		out[i] = n.Clone()
	}
	return out
}

// NewRequest builds a request skeleton with sane defaults.
func NewRequest(method string, uri *URI) *Message {
	return &Message{
		Method:      method,
		RequestURI:  uri,
		MaxForwards: 70,
		Expires:     -1,
	}
}

// NewResponse builds a response to req per RFC 3261 §8.2.6: Via, From, To,
// Call-ID and CSeq are copied from the request.
func NewResponse(req *Message, code int, reason string) *Message {
	if reason == "" {
		reason = ReasonPhrase(code)
	}
	resp := &Message{
		StatusCode:  code,
		Reason:      reason,
		CallID:      req.CallID,
		CSeq:        req.CSeq,
		From:        req.From.Clone(),
		To:          req.To.Clone(),
		MaxForwards: -1,
		Expires:     -1,
	}
	resp.Via = make([]*Via, len(req.Via))
	for i, v := range req.Via {
		resp.Via[i] = v.clone()
	}
	// Record-Route is mirrored into responses so the UAC learns the
	// dialog's route set (RFC 3261 §12.1.1, §16.7).
	resp.RecordRoute = cloneNameAddrs(req.RecordRoute)
	return resp
}

// TransactionKey identifies the transaction a message belongs to
// (RFC 3261 §17.2.3: top Via branch + CSeq method, with CANCEL/ACK matching
// the INVITE they refer to handled by callers).
func (m *Message) TransactionKey() string {
	v := m.TopVia()
	branch := ""
	if v != nil {
		branch = v.Branch()
	}
	method := m.CSeq.Method
	if method == MethodAck {
		method = MethodInvite
	}
	return branch + "|" + method
}
