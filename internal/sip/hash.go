package sip

// HashAOR is the canonical 32-bit FNV-1a hash of an address-of-record, the
// key the sharded registrar tier distributes bindings by. It lives here so
// every layer that partitions by AOR — provider shards today, a DHT overlay
// registrar tomorrow — agrees on the hash without importing each other.
func HashAOR(aor string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(aor); i++ {
		h ^= uint32(aor[i])
		h *= prime32
	}
	return h
}
