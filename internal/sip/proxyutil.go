package sip

import (
	"errors"
	"fmt"
)

// ErrTooManyHops is returned by PrepareForward when Max-Forwards reaches 0;
// the proxy answers the request with 483.
var ErrTooManyHops = errors.New("sip: max-forwards exhausted")

// PrepareForward clones req for forwarding by a proxy: it decrements
// Max-Forwards and strips the Route header entry pointing at this proxy, if
// any. The caller then sends the clone with Stack.SendRequest, which pushes
// the proxy's Via.
func PrepareForward(req *Message, self Addr) (*Message, error) {
	fwd := req.Clone()
	if fwd.MaxForwards < 0 {
		fwd.MaxForwards = 70
	}
	if fwd.MaxForwards == 0 {
		return nil, ErrTooManyHops
	}
	fwd.MaxForwards--
	// Remove a top Route entry addressed to us (loose routing).
	if len(fwd.Route) > 0 {
		top := fwd.Route[0].URI
		if top.Host == string(self.Node) && top.PortOrDefault() == self.Port {
			fwd.Route = fwd.Route[1:]
		}
	}
	return fwd, nil
}

// PrepareResponseForward clones resp for forwarding upstream: it pops this
// proxy's Via and returns the next hop taken from the new top Via's sent-by.
func PrepareResponseForward(resp *Message, self Addr) (*Message, Addr, error) {
	if len(resp.Via) < 2 {
		return nil, Addr{}, fmt.Errorf("sip: response has no upstream Via")
	}
	top := resp.Via[0]
	if top.Host != string(self.Node) || top.SentBy().Port != self.Port {
		return nil, Addr{}, fmt.Errorf("sip: top Via %s is not this proxy (%s)", top.SentBy(), self)
	}
	fwd := resp.Clone()
	fwd.Via = fwd.Via[1:]
	return fwd, fwd.Via[0].SentBy(), nil
}

// HasLoop reports whether the request already passed through the given
// proxy address, by scanning Via (RFC 3261 loop detection, simplified).
func HasLoop(req *Message, self Addr) bool {
	for _, v := range req.Via {
		if v.Host == string(self.Node) && v.SentBy().Port == self.Port {
			return true
		}
	}
	return false
}
