package sip

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/netem"
	"siphoc/internal/obs"
)

// Config tunes the transaction layer. The zero value gets RFC 3261 defaults;
// simulations scale T1 down.
type Config struct {
	// T1 is the RTT estimate driving retransmissions (default 500ms).
	T1 time.Duration
	// T2 caps non-INVITE retransmission intervals (default 4s).
	T2 time.Duration
	// Clock is the time source (default the system clock).
	Clock clock.Clock
	// Obs records per-leg INVITE spans and transaction counters. Nil
	// disables observability; the message path then pays one branch.
	Obs *obs.Observer
	// Sched, when set, delivers datagrams via a conn callback and runs the
	// retransmission, linger and expiry timers as event-loop tasks instead
	// of one goroutine per transaction plus a receive goroutine per stack.
	// TU request handlers still get their own goroutine (they may block).
	Sched *clock.Scheduler
}

func (c Config) withDefaults() Config {
	if c.T1 == 0 {
		c.T1 = 500 * time.Millisecond
	}
	if c.T2 == 0 {
		c.T2 = 4 * time.Second
	}
	if c.Clock == nil {
		c.Clock = clock.New()
	}
	return c
}

// SimConfig returns transaction timing scaled for in-memory simulation.
func SimConfig() Config {
	return Config{T1: 25 * time.Millisecond, T2: 200 * time.Millisecond}.withDefaults()
}

// RequestHandler receives new server transactions. It runs on its own
// goroutine per transaction and may block.
type RequestHandler func(tx *ServerTx)

// Stack binds SIP message I/O and the transaction layer to one UDP-like
// port. Create with NewStack, release with Close.
type Stack struct {
	conn *netem.Conn
	cfg  Config
	clk  clock.Clock
	self Addr

	mu        sync.Mutex
	clientTxs map[string]*ClientTx
	serverTxs map[string]*ServerTx
	handler   RequestHandler
	strayResp func(*Message, Addr)
	closed    bool

	seq  atomic.Uint64
	stop chan struct{}
	wg   sync.WaitGroup

	// Pre-resolved obs handles; all nil when cfg.Obs is nil.
	obs         *obs.Observer
	obsRetrans  *obs.Counter
	obsTimeouts *obs.Counter
	obsInvites  *obs.Counter
}

// NewStack attaches a SIP endpoint to conn and starts its receive loop.
func NewStack(conn *netem.Conn, cfg Config) *Stack {
	cfg = cfg.withDefaults()
	s := &Stack{
		conn:      conn,
		cfg:       cfg,
		clk:       cfg.Clock,
		self:      Addr{Node: conn.Host().ID(), Port: conn.LocalPort()},
		clientTxs: make(map[string]*ClientTx),
		serverTxs: make(map[string]*ServerTx),
		stop:      make(chan struct{}),
	}
	if cfg.Obs.Enabled() {
		s.obs = cfg.Obs
		s.obsRetrans = cfg.Obs.Counter("sip.retransmits")
		s.obsTimeouts = cfg.Obs.Counter("sip.tx.timeouts")
		s.obsInvites = cfg.Obs.Counter("sip.tx.invites")
	}
	if cfg.Sched != nil {
		s.conn.Handle(func(dg *netem.Datagram) { s.dispatch(dg) })
		return s
	}
	s.wg.Add(1)
	go s.recvLoop()
	return s
}

// Addr returns the local SIP transport address.
func (s *Stack) Addr() Addr { return s.self }

// OnRequest installs the handler for new incoming requests.
func (s *Stack) OnRequest(h RequestHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handler = h
}

// OnStrayResponse installs a handler for responses that match no client
// transaction (e.g. retransmitted 200 OK after transaction termination).
func (s *Stack) OnStrayResponse(h func(*Message, Addr)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.strayResp = h
}

// Close terminates the stack: all transactions stop and the receive loop
// exits. The underlying connection is closed too.
func (s *Stack) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var txs []*ClientTx
	if s.cfg.Sched != nil {
		// Event-loop client transactions have no goroutine watching s.stop;
		// terminate them here so Await callers unblock (terminate is
		// idempotent, so a late timer step racing this is harmless).
		txs = make([]*ClientTx, 0, len(s.clientTxs))
		for _, tx := range s.clientTxs {
			txs = append(txs, tx)
		}
	}
	s.mu.Unlock()
	close(s.stop)
	s.conn.Close()
	for _, tx := range txs {
		tx.terminate()
	}
	s.wg.Wait()
}

func (s *Stack) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// NewBranch returns a fresh RFC 3261 branch token, unique across nodes.
func (s *Stack) NewBranch() string {
	return BranchPrefix + "-" + string(s.self.Node) + "-" +
		strconv.Itoa(int(s.self.Port)) + "-" + strconv.FormatUint(s.seq.Add(1), 36)
}

// NewTag returns a fresh From/To tag.
func (s *Stack) NewTag() string {
	return "tag-" + string(s.self.Node) + "-" + strconv.FormatUint(s.seq.Add(1), 36)
}

// NewCallID returns a fresh Call-ID scoped to this node.
func (s *Stack) NewCallID() string {
	return "cid-" + strconv.FormatUint(s.seq.Add(1), 36) + "@" + string(s.self.Node)
}

// Send transmits a message without transaction state (responses, ACKs).
func (s *Stack) Send(m *Message, dst Addr) error {
	return s.conn.WriteTo(m.Marshal(), dst.Node, dst.Port)
}

// SendRequest starts a client transaction: it pushes a fresh Via for this
// stack onto req (mutating it), transmits with retransmissions, and returns
// the transaction whose Responses channel delivers provisional and final
// responses.
func (s *Stack) SendRequest(req *Message, dst Addr) (*ClientTx, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("sip: stack closed")
	}
	s.mu.Unlock()
	via := &Via{
		Transport: "UDP",
		Host:      string(s.self.Node),
		Port:      s.self.Port,
		Params:    map[string]string{"branch": s.NewBranch()},
	}
	req.Via = append([]*Via{via}, req.Via...)
	tx := newClientTx(s, req, dst)
	s.mu.Lock()
	s.clientTxs[tx.key] = tx
	s.mu.Unlock()
	tx.start()
	return tx, nil
}

// SendRequestPreVia starts a client transaction for a request whose Via
// stack is already in place — the CANCEL case, which must reuse the branch
// of the INVITE it cancels (RFC 3261 §9.1).
func (s *Stack) SendRequestPreVia(req *Message, dst Addr) (*ClientTx, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("sip: stack closed")
	}
	s.mu.Unlock()
	if req.TopVia() == nil {
		return nil, fmt.Errorf("sip: SendRequestPreVia needs a Via")
	}
	tx := newClientTx(s, req, dst)
	s.mu.Lock()
	s.clientTxs[tx.key] = tx
	s.mu.Unlock()
	tx.start()
	return tx, nil
}

// BuildCancel constructs the CANCEL for a previously sent request per
// RFC 3261 §9.1: same Request-URI, Call-ID, From, To, Route and top Via
// (including the branch), CSeq with the same number but method CANCEL.
func BuildCancel(invite *Message) *Message {
	c := NewRequest(MethodCancel, invite.RequestURI.Clone())
	if top := invite.TopVia(); top != nil {
		c.Via = []*Via{top.clone()}
	}
	c.From = invite.From.Clone()
	c.To = invite.To.Clone()
	c.CallID = invite.CallID
	c.CSeq = CSeq{Seq: invite.CSeq.Seq, Method: MethodCancel}
	c.Route = cloneNameAddrs(invite.Route)
	c.MaxForwards = 70
	return c
}

// FindInviteServerTx returns the INVITE server transaction with the given
// Via branch, used to match CANCEL requests.
func (s *Stack) FindInviteServerTx(branch string) (*ServerTx, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx, ok := s.serverTxs[branch+"|"+MethodInvite]
	return tx, ok
}

func (s *Stack) removeClientTx(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.clientTxs, key)
}

func (s *Stack) removeServerTx(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.serverTxs, key)
}

func (s *Stack) recvLoop() {
	defer s.wg.Done()
	for {
		dg, ok := s.conn.Recv()
		if !ok {
			return
		}
		s.dispatch(dg)
	}
}

func (s *Stack) dispatch(dg *netem.Datagram) {
	m, err := Parse(dg.Data)
	if err != nil {
		return // malformed datagrams are dropped, as a UA would
	}
	src := Addr{Node: dg.SrcNode, Port: dg.SrcPort}
	if m.IsResponse() {
		s.dispatchResponse(m, src)
	} else {
		s.dispatchRequest(m, src)
	}
}

func (s *Stack) dispatchResponse(m *Message, src Addr) {
	key := m.TransactionKey()
	// Responses to non-INVITE methods keep their own method in the key.
	if m.CSeq.Method != MethodInvite && m.CSeq.Method != MethodAck {
		key = ""
		if v := m.TopVia(); v != nil {
			key = v.Branch()
		}
		key += "|" + m.CSeq.Method
	}
	s.mu.Lock()
	tx := s.clientTxs[key]
	stray := s.strayResp
	s.mu.Unlock()
	if tx != nil {
		tx.onResponse(m)
		return
	}
	if stray != nil {
		stray(m, src)
	}
}

func (s *Stack) dispatchRequest(m *Message, src Addr) {
	key := m.TransactionKey()
	s.mu.Lock()
	tx := s.serverTxs[key]
	handler := s.handler
	s.mu.Unlock()
	if tx != nil {
		tx.onRequest(m)
		return
	}
	if m.Method == MethodAck {
		// ACK for a 2xx: no matching transaction by design; hand to the
		// TU as a standalone request (dialog confirmation).
		if handler != nil {
			tx := newServerTx(s, m, src, true)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				handler(tx)
			}()
		}
		return
	}
	tx = newServerTx(s, m, src, false)
	s.mu.Lock()
	s.serverTxs[key] = tx
	s.mu.Unlock()
	tx.scheduleExpiry()
	if handler == nil {
		_ = tx.RespondCode(StatusServiceUnavail, "")
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		handler(tx)
	}()
}
