package sip

import (
	"fmt"
	"strconv"
	"strings"
)

// canonicalHeader maps compact forms and normalizes case.
func canonicalHeader(name string) string {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "v", "via":
		return "Via"
	case "f", "from":
		return "From"
	case "t", "to":
		return "To"
	case "i", "call-id":
		return "Call-ID"
	case "m", "contact":
		return "Contact"
	case "c", "content-type":
		return "Content-Type"
	case "l", "content-length":
		return "Content-Length"
	case "cseq":
		return "CSeq"
	case "max-forwards":
		return "Max-Forwards"
	case "expires":
		return "Expires"
	case "route":
		return "Route"
	case "record-route":
		return "Record-Route"
	case "user-agent":
		return "User-Agent"
	case "www-authenticate":
		return "WWW-Authenticate"
	case "authorization":
		return "Authorization"
	case "proxy-authenticate":
		return "Proxy-Authenticate"
	case "proxy-authorization":
		return "Proxy-Authorization"
	default:
		// Title-case each dash-separated token.
		parts := strings.Split(strings.ToLower(strings.TrimSpace(name)), "-")
		for i, p := range parts {
			if p != "" {
				parts[i] = strings.ToUpper(p[:1]) + p[1:]
			}
		}
		return strings.Join(parts, "-")
	}
}

// Parse decodes a SIP message from its textual wire form.
func Parse(data []byte) (*Message, error) {
	text := string(data)
	headEnd := strings.Index(text, "\r\n\r\n")
	sep := 4
	if headEnd < 0 {
		headEnd = strings.Index(text, "\n\n")
		sep = 2
	}
	var head, body string
	if headEnd >= 0 {
		head, body = text[:headEnd], text[headEnd+sep:]
	} else {
		head = text
	}
	lines := splitLines(head)
	if len(lines) == 0 {
		return nil, fmt.Errorf("sip: empty message")
	}
	m := &Message{MaxForwards: -1, Expires: -1}
	if err := parseStartLine(m, lines[0]); err != nil {
		return nil, err
	}
	contentLength := -1
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("sip: malformed header line %q", line)
		}
		if !isToken(strings.TrimSpace(line[:colon])) {
			return nil, fmt.Errorf("sip: malformed header name %q", line[:colon])
		}
		name := canonicalHeader(line[:colon])
		value := strings.TrimSpace(line[colon+1:])
		if err := setHeader(m, name, value, &contentLength); err != nil {
			return nil, err
		}
	}
	if err := validate(m); err != nil {
		return nil, err
	}
	if contentLength >= 0 {
		if contentLength > len(body) {
			return nil, fmt.Errorf("sip: Content-Length %d exceeds body %d", contentLength, len(body))
		}
		body = body[:contentLength]
	}
	if body != "" {
		m.Body = []byte(body)
	}
	return m, nil
}

func splitLines(s string) []string {
	raw := strings.Split(s, "\n")
	out := make([]string, 0, len(raw))
	for _, l := range raw {
		out = append(out, strings.TrimRight(l, "\r"))
	}
	return out
}

func parseStartLine(m *Message, line string) error {
	if strings.HasPrefix(line, "SIP/2.0 ") {
		rest := line[len("SIP/2.0 "):]
		sp := strings.IndexByte(rest, ' ')
		codeStr, reason := rest, ""
		if sp >= 0 {
			codeStr, reason = rest[:sp], rest[sp+1:]
		}
		code, err := strconv.Atoi(codeStr)
		if err != nil || code < 100 || code > 699 {
			return fmt.Errorf("sip: bad status line %q", line)
		}
		m.StatusCode = code
		m.Reason = reason
		return nil
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || parts[2] != "SIP/2.0" {
		return fmt.Errorf("sip: bad request line %q", line)
	}
	method := strings.ToUpper(parts[0])
	if !isToken(method) {
		return fmt.Errorf("sip: bad method %q", parts[0])
	}
	uri, err := ParseURI(parts[1])
	if err != nil {
		return err
	}
	m.Method = method
	m.RequestURI = uri
	return nil
}

// isToken reports whether s is a non-empty RFC 3261 token (method names,
// header tokens).
func isToken(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z', r >= 'a' && r <= 'z', r >= '0' && r <= '9':
		case strings.ContainsRune("-.!%*_+`'~", r):
		default:
			return false
		}
	}
	return true
}

func setHeader(m *Message, name, value string, contentLength *int) error {
	switch name {
	case "Via":
		for _, part := range splitTopLevel(value) {
			v, err := ParseVia(part)
			if err != nil {
				return err
			}
			m.Via = append(m.Via, v)
		}
	case "From":
		na, err := ParseNameAddr(value)
		if err != nil {
			return fmt.Errorf("sip: From: %v", err)
		}
		m.From = na
	case "To":
		na, err := ParseNameAddr(value)
		if err != nil {
			return fmt.Errorf("sip: To: %v", err)
		}
		m.To = na
	case "Contact":
		if value == "*" {
			m.Contact = append(m.Contact, &NameAddr{Display: "*", URI: &URI{Scheme: "sip", Host: "*"}})
			break
		}
		for _, part := range splitTopLevel(value) {
			na, err := ParseNameAddr(part)
			if err != nil {
				return fmt.Errorf("sip: Contact: %v", err)
			}
			m.Contact = append(m.Contact, na)
		}
	case "Route", "Record-Route":
		for _, part := range splitTopLevel(value) {
			na, err := ParseNameAddr(part)
			if err != nil {
				return fmt.Errorf("sip: %s: %v", name, err)
			}
			if name == "Route" {
				m.Route = append(m.Route, na)
			} else {
				m.RecordRoute = append(m.RecordRoute, na)
			}
		}
	case "Call-ID":
		m.CallID = value
	case "CSeq":
		sp := strings.IndexByte(value, ' ')
		if sp < 0 {
			return fmt.Errorf("sip: bad CSeq %q", value)
		}
		seq, err := strconv.ParseUint(strings.TrimSpace(value[:sp]), 10, 32)
		if err != nil {
			return fmt.Errorf("sip: bad CSeq %q", value)
		}
		m.CSeq = CSeq{Seq: uint32(seq), Method: strings.ToUpper(strings.TrimSpace(value[sp+1:]))}
	case "Max-Forwards":
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return fmt.Errorf("sip: bad Max-Forwards %q", value)
		}
		m.MaxForwards = n
	case "Expires":
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return fmt.Errorf("sip: bad Expires %q", value)
		}
		m.Expires = n
	case "Content-Type":
		m.ContentType = value
	case "Content-Length":
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return fmt.Errorf("sip: bad Content-Length %q", value)
		}
		*contentLength = n
	case "User-Agent":
		m.UserAgent = value
	default:
		if m.Other == nil {
			m.Other = make(map[string][]string)
		}
		m.Other[name] = append(m.Other[name], value)
	}
	return nil
}

// splitTopLevel splits a comma-separated header value, respecting quoted
// strings and angle brackets (so "Bob" <sip:b@x>, <sip:c@y> splits cleanly).
func splitTopLevel(s string) []string {
	var out []string
	depth, inQuote, start := 0, false, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case '<':
			if !inQuote {
				depth++
			}
		case '>':
			if !inQuote && depth > 0 {
				depth--
			}
		case ',':
			if !inQuote && depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}

func validate(m *Message) error {
	if m.From == nil || m.To == nil {
		return fmt.Errorf("sip: missing From or To")
	}
	if m.CallID == "" {
		return fmt.Errorf("sip: missing Call-ID")
	}
	if m.CSeq.Method == "" {
		return fmt.Errorf("sip: missing CSeq")
	}
	if m.IsRequest() && m.CSeq.Method != m.Method {
		return fmt.Errorf("sip: CSeq method %q does not match request method %q", m.CSeq.Method, m.Method)
	}
	return nil
}
