package sip

import (
	"fmt"
	"strconv"
	"strings"
)

// canonicalKnown maps a header name (long or RFC 3261 compact form) to its
// canonical spelling without allocating. The bool reports whether the name
// was recognised; unknown names fall back to the allocating title-casing in
// canonicalHeader.
func canonicalKnown(name string) (string, bool) {
	switch len(name) {
	case 1:
		switch name[0] | 0x20 {
		case 'v':
			return "Via", true
		case 'f':
			return "From", true
		case 't':
			return "To", true
		case 'i':
			return "Call-ID", true
		case 'm':
			return "Contact", true
		case 'c':
			return "Content-Type", true
		case 'l':
			return "Content-Length", true
		}
	case 2:
		if strings.EqualFold(name, "To") {
			return "To", true
		}
	case 3:
		if strings.EqualFold(name, "Via") {
			return "Via", true
		}
	case 4:
		if strings.EqualFold(name, "From") {
			return "From", true
		}
		if strings.EqualFold(name, "CSeq") {
			return "CSeq", true
		}
	case 5:
		if strings.EqualFold(name, "Route") {
			return "Route", true
		}
	case 7:
		if strings.EqualFold(name, "Call-ID") {
			return "Call-ID", true
		}
		if strings.EqualFold(name, "Contact") {
			return "Contact", true
		}
		if strings.EqualFold(name, "Expires") {
			return "Expires", true
		}
	case 10:
		if strings.EqualFold(name, "User-Agent") {
			return "User-Agent", true
		}
	case 12:
		if strings.EqualFold(name, "Max-Forwards") {
			return "Max-Forwards", true
		}
		if strings.EqualFold(name, "Content-Type") {
			return "Content-Type", true
		}
		if strings.EqualFold(name, "Record-Route") {
			return "Record-Route", true
		}
	case 13:
		if strings.EqualFold(name, "Authorization") {
			return "Authorization", true
		}
	case 14:
		if strings.EqualFold(name, "Content-Length") {
			return "Content-Length", true
		}
	case 16:
		if strings.EqualFold(name, "WWW-Authenticate") {
			return "WWW-Authenticate", true
		}
	case 18:
		if strings.EqualFold(name, "Proxy-Authenticate") {
			return "Proxy-Authenticate", true
		}
	case 19:
		if strings.EqualFold(name, "Proxy-Authorization") {
			return "Proxy-Authorization", true
		}
	}
	return "", false
}

// canonicalHeader maps compact forms and normalizes case, allocating only
// for names outside the known set.
func canonicalHeader(name string) string {
	name = strings.TrimSpace(name)
	if c, ok := canonicalKnown(name); ok {
		return c
	}
	// Title-case each dash-separated token.
	parts := strings.Split(strings.ToLower(name), "-")
	for i, p := range parts {
		if p != "" {
			parts[i] = strings.ToUpper(p[:1]) + p[1:]
		}
	}
	return strings.Join(parts, "-")
}

// nextLine splits s at the first newline, trimming the line's trailing CR.
// more is false once s held no newline (last line).
func nextLine(s string) (line, rest string, more bool) {
	i := strings.IndexByte(s, '\n')
	if i < 0 {
		return strings.TrimSuffix(s, "\r"), "", false
	}
	line = s[:i]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, s[i+1:], true
}

// Parse decodes a SIP message from its textual wire form. The input is
// copied into one backing string; all string fields of the result are
// slices of it.
func Parse(data []byte) (*Message, error) {
	text := string(data)
	headEnd := strings.Index(text, "\r\n\r\n")
	sep := 4
	if headEnd < 0 {
		headEnd = strings.Index(text, "\n\n")
		sep = 2
	}
	var head, body string
	if headEnd >= 0 {
		head, body = text[:headEnd], text[headEnd+sep:]
	} else {
		head = text
	}
	m := &Message{MaxForwards: -1, Expires: -1}
	start, rest, more := nextLine(head)
	if err := parseStartLine(m, start); err != nil {
		return nil, err
	}
	contentLength := -1
	for more {
		var line string
		line, rest, more = nextLine(rest)
		if line == "" {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("sip: malformed header line %q", line)
		}
		rawName := strings.TrimSpace(line[:colon])
		if !isToken(rawName) {
			return nil, fmt.Errorf("sip: malformed header name %q", line[:colon])
		}
		name, known := canonicalKnown(rawName)
		if !known {
			name = canonicalHeader(rawName)
		}
		value := strings.TrimSpace(line[colon+1:])
		if err := setHeader(m, name, value, &contentLength); err != nil {
			return nil, err
		}
	}
	if err := validate(m); err != nil {
		return nil, err
	}
	if contentLength >= 0 {
		if contentLength > len(body) {
			return nil, fmt.Errorf("sip: Content-Length %d exceeds body %d", contentLength, len(body))
		}
		body = body[:contentLength]
	}
	if body != "" {
		m.Body = []byte(body)
	}
	return m, nil
}

func parseStartLine(m *Message, line string) error {
	if strings.HasPrefix(line, "SIP/2.0 ") {
		rest := line[len("SIP/2.0 "):]
		sp := strings.IndexByte(rest, ' ')
		codeStr, reason := rest, ""
		if sp >= 0 {
			codeStr, reason = rest[:sp], rest[sp+1:]
		}
		code, err := strconv.Atoi(codeStr)
		if err != nil || code < 100 || code > 699 {
			return fmt.Errorf("sip: bad status line %q", line)
		}
		m.StatusCode = code
		m.Reason = reason
		return nil
	}
	sp1 := strings.IndexByte(line, ' ')
	if sp1 < 0 {
		return fmt.Errorf("sip: bad request line %q", line)
	}
	sp2 := strings.IndexByte(line[sp1+1:], ' ')
	if sp2 < 0 || line[sp1+1+sp2+1:] != "SIP/2.0" {
		return fmt.Errorf("sip: bad request line %q", line)
	}
	method := strings.ToUpper(line[:sp1])
	if !isToken(method) {
		return fmt.Errorf("sip: bad method %q", line[:sp1])
	}
	uri, err := ParseURI(line[sp1+1 : sp1+1+sp2])
	if err != nil {
		return err
	}
	m.Method = method
	m.RequestURI = uri
	return nil
}

// isToken reports whether s is a non-empty RFC 3261 token (method names,
// header tokens).
func isToken(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z', r >= 'a' && r <= 'z', r >= '0' && r <= '9':
		case strings.ContainsRune("-.!%*_+`'~", r):
		default:
			return false
		}
	}
	return true
}

func setHeader(m *Message, name, value string, contentLength *int) error {
	switch name {
	case "Via":
		return forEachTopLevel(value, func(part string) error {
			v, err := ParseVia(part)
			if err != nil {
				return err
			}
			m.Via = append(m.Via, v)
			return nil
		})
	case "From":
		na, err := ParseNameAddr(value)
		if err != nil {
			return fmt.Errorf("sip: From: %v", err)
		}
		m.From = na
	case "To":
		na, err := ParseNameAddr(value)
		if err != nil {
			return fmt.Errorf("sip: To: %v", err)
		}
		m.To = na
	case "Contact":
		if value == "*" {
			m.Contact = append(m.Contact, &NameAddr{Display: "*", URI: &URI{Scheme: "sip", Host: "*"}})
			break
		}
		return forEachTopLevel(value, func(part string) error {
			na, err := ParseNameAddr(part)
			if err != nil {
				return fmt.Errorf("sip: Contact: %v", err)
			}
			m.Contact = append(m.Contact, na)
			return nil
		})
	case "Route", "Record-Route":
		return forEachTopLevel(value, func(part string) error {
			na, err := ParseNameAddr(part)
			if err != nil {
				return fmt.Errorf("sip: %s: %v", name, err)
			}
			if name == "Route" {
				m.Route = append(m.Route, na)
			} else {
				m.RecordRoute = append(m.RecordRoute, na)
			}
			return nil
		})
	case "Call-ID":
		m.CallID = value
	case "CSeq":
		sp := strings.IndexByte(value, ' ')
		if sp < 0 {
			return fmt.Errorf("sip: bad CSeq %q", value)
		}
		seq, err := strconv.ParseUint(strings.TrimSpace(value[:sp]), 10, 32)
		if err != nil {
			return fmt.Errorf("sip: bad CSeq %q", value)
		}
		m.CSeq = CSeq{Seq: uint32(seq), Method: strings.ToUpper(strings.TrimSpace(value[sp+1:]))}
	case "Max-Forwards":
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return fmt.Errorf("sip: bad Max-Forwards %q", value)
		}
		m.MaxForwards = n
	case "Expires":
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return fmt.Errorf("sip: bad Expires %q", value)
		}
		m.Expires = n
	case "Content-Type":
		m.ContentType = value
	case "Content-Length":
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return fmt.Errorf("sip: bad Content-Length %q", value)
		}
		*contentLength = n
	case "User-Agent":
		m.UserAgent = value
	default:
		if m.Other == nil {
			m.Other = make(map[string][]string)
		}
		m.Other[name] = append(m.Other[name], value)
	}
	return nil
}

// forEachTopLevel visits the comma-separated elements of a header value,
// respecting quoted strings and angle brackets (so "Bob" <sip:b@x>, <sip:c@y>
// splits cleanly) without allocating an intermediate slice.
func forEachTopLevel(s string, fn func(string) error) error {
	depth, inQuote, start := 0, false, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case '<':
			if !inQuote {
				depth++
			}
		case '>':
			if !inQuote && depth > 0 {
				depth--
			}
		case ',':
			if !inQuote && depth == 0 {
				if part := strings.TrimSpace(s[start:i]); part != "" {
					if err := fn(part); err != nil {
						return err
					}
				}
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		return fn(tail)
	}
	return nil
}

// splitTopLevel is the slice-returning form of forEachTopLevel.
func splitTopLevel(s string) []string {
	var out []string
	_ = forEachTopLevel(s, func(part string) error {
		out = append(out, part)
		return nil
	})
	return out
}

func validate(m *Message) error {
	if m.From == nil || m.To == nil {
		return fmt.Errorf("sip: missing From or To")
	}
	if m.CallID == "" {
		return fmt.Errorf("sip: missing Call-ID")
	}
	if m.CSeq.Method == "" {
		return fmt.Errorf("sip: missing CSeq")
	}
	if m.IsRequest() && m.CSeq.Method != m.Method {
		return fmt.Errorf("sip: CSeq method %q does not match request method %q", m.CSeq.Method, m.Method)
	}
	return nil
}
