package sip

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Digest authentication (RFC 2617 as profiled by RFC 3261 §22): providers
// challenge REGISTER/INVITE with a 401 carrying WWW-Authenticate, and the
// client retries with an Authorization header whose response digest proves
// knowledge of the shared password. The qop="auth" flavour with client
// nonces is implemented.

// DigestChallenge is the server side of the handshake.
type DigestChallenge struct {
	Realm string
	Nonce string
	// Opaque is echoed back verbatim when present.
	Opaque string
}

// quoteParam renders a quoted digest parameter value. Quotes and
// backslashes are stripped first: digest values are hex digests, tokens and
// hostnames in practice, and the simple parser on the other side does not
// process escapes.
func quoteParam(s string) string {
	s = strings.Map(func(r rune) rune {
		switch r {
		case '"', '\\', '\r', '\n':
			return -1
		default:
			return r
		}
	}, s)
	return `"` + s + `"`
}

// String renders the WWW-Authenticate header value.
func (c *DigestChallenge) String() string {
	parts := []string{
		"realm=" + quoteParam(c.Realm),
		"nonce=" + quoteParam(c.Nonce),
		`algorithm=MD5`,
		`qop="auth"`,
	}
	if c.Opaque != "" {
		parts = append(parts, "opaque="+quoteParam(c.Opaque))
	}
	return "Digest " + strings.Join(parts, ", ")
}

// ParseDigestChallenge parses a WWW-Authenticate value.
func ParseDigestChallenge(v string) (*DigestChallenge, error) {
	kv, err := parseDigestParams(v)
	if err != nil {
		return nil, err
	}
	c := &DigestChallenge{Realm: kv["realm"], Nonce: kv["nonce"], Opaque: kv["opaque"]}
	if c.Realm == "" || c.Nonce == "" {
		return nil, fmt.Errorf("sip: digest challenge missing realm or nonce")
	}
	return c, nil
}

// DigestCredentials is the client side of the handshake.
type DigestCredentials struct {
	Username string
	Realm    string
	Nonce    string
	URI      string
	CNonce   string
	NC       uint32
	Response string
	Opaque   string
}

// String renders the Authorization header value.
func (a *DigestCredentials) String() string {
	parts := []string{
		"username=" + quoteParam(a.Username),
		"realm=" + quoteParam(a.Realm),
		"nonce=" + quoteParam(a.Nonce),
		"uri=" + quoteParam(a.URI),
		"response=" + quoteParam(a.Response),
		"cnonce=" + quoteParam(a.CNonce),
		fmt.Sprintf("nc=%08x", a.NC),
		"qop=auth",
		"algorithm=MD5",
	}
	if a.Opaque != "" {
		parts = append(parts, "opaque="+quoteParam(a.Opaque))
	}
	return "Digest " + strings.Join(parts, ", ")
}

// ParseDigestCredentials parses an Authorization value.
func ParseDigestCredentials(v string) (*DigestCredentials, error) {
	kv, err := parseDigestParams(v)
	if err != nil {
		return nil, err
	}
	a := &DigestCredentials{
		Username: kv["username"],
		Realm:    kv["realm"],
		Nonce:    kv["nonce"],
		URI:      kv["uri"],
		CNonce:   kv["cnonce"],
		Response: kv["response"],
		Opaque:   kv["opaque"],
	}
	if _, err := fmt.Sscanf(kv["nc"], "%x", &a.NC); err != nil {
		return nil, fmt.Errorf("sip: digest nc %q: %v", kv["nc"], err)
	}
	if a.Username == "" || a.Nonce == "" || a.Response == "" {
		return nil, fmt.Errorf("sip: digest credentials incomplete")
	}
	return a, nil
}

// parseDigestParams splits `Digest k1="v1", k2=v2, ...`.
func parseDigestParams(v string) (map[string]string, error) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(v), "Digest ")
	if !ok {
		return nil, fmt.Errorf("sip: not a Digest header: %q", v)
	}
	kv := make(map[string]string)
	for _, part := range splitQuotedCommas(rest) {
		k, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("sip: malformed digest param %q", part)
		}
		kv[strings.ToLower(strings.TrimSpace(k))] = strings.Trim(strings.TrimSpace(val), `"`)
	}
	return kv, nil
}

// splitQuotedCommas splits on commas outside double quotes.
func splitQuotedCommas(s string) []string {
	var out []string
	inQ, start := false, 0
	for i := range len(s) {
		switch s[i] {
		case '"':
			inQ = !inQ
		case ',':
			if !inQ {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}

// DigestResponse computes the qop=auth response digest
// (RFC 2617 §3.2.2.1): MD5(HA1 : nonce : nc : cnonce : "auth" : HA2) with
// HA1 = MD5(user:realm:password) and HA2 = MD5(method:uri).
func DigestResponse(username, realm, password, method, uri, nonce, cnonce string, nc uint32) string {
	ha1 := md5hex(username + ":" + realm + ":" + password)
	ha2 := md5hex(method + ":" + uri)
	return md5hex(fmt.Sprintf("%s:%s:%08x:%s:auth:%s", ha1, nonce, nc, cnonce, ha2))
}

func md5hex(s string) string {
	sum := md5.Sum([]byte(s))
	return hex.EncodeToString(sum[:])
}

// Answer builds the Authorization credentials answering a challenge.
func (c *DigestChallenge) Answer(username, password, method, uri, cnonce string, nc uint32) *DigestCredentials {
	return &DigestCredentials{
		Username: username,
		Realm:    c.Realm,
		Nonce:    c.Nonce,
		URI:      uri,
		CNonce:   cnonce,
		NC:       nc,
		Opaque:   c.Opaque,
		Response: DigestResponse(username, c.Realm, password, method, uri, c.Nonce, cnonce, nc),
	}
}

// Verify checks the credentials against the expected password for the given
// request method.
func (a *DigestCredentials) Verify(password, method string) bool {
	want := DigestResponse(a.Username, a.Realm, password, method, a.URI, a.Nonce, a.CNonce, a.NC)
	return want == a.Response
}

// Challenge and Authorization accessors on Message (stored among the
// uninterpreted headers so proxying preserves them).

// SetChallenge attaches a WWW-Authenticate header to a 401 response.
func (m *Message) SetChallenge(c *DigestChallenge) {
	if m.Other == nil {
		m.Other = make(map[string][]string)
	}
	m.Other["WWW-Authenticate"] = []string{c.String()}
}

// Challenge extracts the WWW-Authenticate challenge, if any.
func (m *Message) Challenge() (*DigestChallenge, bool) {
	vs := m.Other["WWW-Authenticate"]
	if len(vs) == 0 {
		return nil, false
	}
	c, err := ParseDigestChallenge(vs[0])
	return c, err == nil
}

// SetAuthorization attaches the Authorization header to a request.
func (m *Message) SetAuthorization(a *DigestCredentials) {
	if m.Other == nil {
		m.Other = make(map[string][]string)
	}
	m.Other["Authorization"] = []string{a.String()}
}

// Authorization extracts the Authorization credentials, if any.
func (m *Message) Authorization() (*DigestCredentials, bool) {
	vs := m.Other["Authorization"]
	if len(vs) == 0 {
		return nil, false
	}
	a, err := ParseDigestCredentials(vs[0])
	return a, err == nil
}

// NonceSource issues and validates server nonces. It is deliberately simple
// (random-free, counter-based) so tests are deterministic; nonces expire
// after maxUses grants to bound replay.
type NonceSource struct {
	prefix  string
	counter uint64
	// issued tracks outstanding nonces and how often they were used.
	issued map[string]int
	// MaxUses bounds how many requests may reuse one nonce (default 4).
	MaxUses int
}

// NewNonceSource creates a source whose nonces carry the given prefix
// (typically the realm).
func NewNonceSource(prefix string) *NonceSource {
	return &NonceSource{prefix: prefix, issued: make(map[string]int), MaxUses: 4}
}

// Next issues a fresh nonce.
func (n *NonceSource) Next() string {
	n.counter++
	nonce := fmt.Sprintf("%s-%d", n.prefix, n.counter)
	n.issued[nonce] = 0
	return nonce
}

// Use validates and consumes one use of a nonce.
func (n *NonceSource) Use(nonce string) bool {
	uses, ok := n.issued[nonce]
	if !ok || uses >= n.MaxUses {
		delete(n.issued, nonce)
		return false
	}
	n.issued[nonce] = uses + 1
	if len(n.issued) > 1024 {
		// Drop the oldest half (lowest counters) to bound memory.
		keys := make([]string, 0, len(n.issued))
		for k := range n.issued {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys[:len(keys)/2] {
			delete(n.issued, k)
		}
	}
	return true
}
