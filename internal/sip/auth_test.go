package sip

import (
	"strings"
	"testing"
)

func TestDigestChallengeRoundTrip(t *testing.T) {
	in := &DigestChallenge{Realm: "voicehoc.ch", Nonce: "n-123", Opaque: "op"}
	out, err := ParseDigestChallenge(in.String())
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("round trip: %+v vs %+v", in, out)
	}
	if _, err := ParseDigestChallenge("Basic foo"); err == nil {
		t.Fatal("non-digest accepted")
	}
	if _, err := ParseDigestChallenge(`Digest realm="x"`); err == nil {
		t.Fatal("missing nonce accepted")
	}
}

func TestDigestCredentialsRoundTrip(t *testing.T) {
	in := &DigestCredentials{
		Username: "alice", Realm: "voicehoc.ch", Nonce: "n-1",
		URI: "sip:voicehoc.ch", CNonce: "c-1", NC: 1, Response: "deadbeef",
	}
	out, err := ParseDigestCredentials(in.String())
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("round trip: %+v vs %+v", in, out)
	}
}

func TestDigestRFC2617Vector(t *testing.T) {
	// The RFC 2617 §3.5 example (HTTP GET, qop=auth).
	got := DigestResponse(
		"Mufasa", "testrealm@host.com", "Circle Of Life",
		"GET", "/dir/index.html",
		"dcd98b7102dd2f0e8b11d0f600bfb0c093", "0a4f113b", 1,
	)
	if got != "6629fae49393a05397450978507c4ef1" {
		t.Fatalf("digest = %s", got)
	}
}

func TestChallengeAnswerVerify(t *testing.T) {
	c := &DigestChallenge{Realm: "voicehoc.ch", Nonce: "n-42"}
	a := c.Answer("alice", "secret", MethodRegister, "sip:voicehoc.ch", "cn-1", 1)
	if !a.Verify("secret", MethodRegister) {
		t.Fatal("valid credentials rejected")
	}
	if a.Verify("wrong", MethodRegister) {
		t.Fatal("wrong password accepted")
	}
	if a.Verify("secret", MethodInvite) {
		t.Fatal("method mismatch accepted")
	}
}

func TestMessageAuthHeaders(t *testing.T) {
	resp := &Message{MaxForwards: -1, Expires: -1}
	resp.SetChallenge(&DigestChallenge{Realm: "r", Nonce: "n"})
	c, ok := resp.Challenge()
	if !ok || c.Realm != "r" {
		t.Fatalf("challenge = %+v %v", c, ok)
	}
	req := &Message{MaxForwards: -1, Expires: -1}
	req.SetAuthorization(&DigestCredentials{Username: "u", Realm: "r", Nonce: "n",
		URI: "sip:r", CNonce: "c", NC: 1, Response: "x"})
	a, ok := req.Authorization()
	if !ok || a.Username != "u" {
		t.Fatalf("authorization = %+v %v", a, ok)
	}
	if _, ok := (&Message{}).Authorization(); ok {
		t.Fatal("authorization on empty message")
	}
}

func TestAuthHeadersSurviveWire(t *testing.T) {
	req := NewRequest(MethodRegister, MustParseURI("sip:voicehoc.ch"))
	req.From = &NameAddr{URI: MustParseURI("sip:alice@voicehoc.ch")}
	req.From.SetTag("t")
	req.To = &NameAddr{URI: MustParseURI("sip:alice@voicehoc.ch")}
	req.CallID = "c1"
	req.CSeq = CSeq{Seq: 2, Method: MethodRegister}
	req.SetAuthorization(&DigestCredentials{Username: "alice", Realm: "voicehoc.ch",
		Nonce: "n", URI: "sip:voicehoc.ch", CNonce: "c", NC: 1, Response: "abc"})
	wire := req.Marshal()
	if !strings.Contains(string(wire), "Authorization: Digest") {
		t.Fatalf("wire missing Authorization:\n%s", wire)
	}
	back, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := back.Authorization()
	if !ok || a.Username != "alice" || a.NC != 1 {
		t.Fatalf("reparsed auth = %+v %v", a, ok)
	}
}

func TestNonceSource(t *testing.T) {
	ns := NewNonceSource("realm")
	n1 := ns.Next()
	n2 := ns.Next()
	if n1 == n2 {
		t.Fatal("nonces not unique")
	}
	for i := range ns.MaxUses {
		if !ns.Use(n1) {
			t.Fatalf("use %d rejected", i)
		}
	}
	if ns.Use(n1) {
		t.Fatal("over-used nonce accepted")
	}
	if ns.Use("forged") {
		t.Fatal("unknown nonce accepted")
	}
}
