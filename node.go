package siphoc

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"siphoc/internal/clock"
	"siphoc/internal/core"
	"siphoc/internal/netem"
	"siphoc/internal/routing"
	"siphoc/internal/routing/aodv"
	"siphoc/internal/routing/olsr"
	"siphoc/internal/rtp"
	"siphoc/internal/sip"
	"siphoc/internal/slp"
	"siphoc/internal/voip"
)

// NodeOption customizes one node.
type NodeOption func(*nodeOptions)

type nodeOptions struct {
	gateway     bool
	routing     RoutingKind
	noConnPrvdr bool
}

// WithGateway makes the node a gateway: it is attached to the scenario's
// Internet and runs a Gateway Provider publishing the gateway SLP service.
func WithGateway() NodeOption { return func(o *nodeOptions) { o.gateway = true } }

// WithRouting overrides the scenario's routing protocol for this node.
// All nodes of a MANET must normally agree.
func WithRouting(k RoutingKind) NodeOption { return func(o *nodeOptions) { o.routing = k } }

// WithoutConnectionProvider disables the node's Connection Provider, e.g.
// for baseline experiments on isolated MANETs.
func WithoutConnectionProvider() NodeOption { return func(o *nodeOptions) { o.noConnPrvdr = true } }

// Node is one MANET node running the full SIPHoc service set: the routing
// protocol, the MANET SLP agent (loaded as the routing-handler plugin), the
// Connection Provider, the per-node SIP proxy and, on gateways, the Gateway
// Provider — the five-component architecture of the paper's Figure 1 (the
// fifth component, the VoIP application, is created with NewPhone).
type Node struct {
	scenario *Scenario
	host     *netem.Host
	routing  routing.Protocol
	agent    *slp.Agent
	connp    *core.ConnectionProvider
	gateway  *core.GatewayProvider
	proxy    *core.Proxy

	mu     sync.Mutex
	phones []*voip.Phone
	closed bool
}

func (s *Scenario) newNode(id NodeID, pos Position, opts ...NodeOption) (*Node, error) {
	o := nodeOptions{routing: s.cfg.Routing}
	for _, opt := range opts {
		opt(&o)
	}
	if o.gateway && s.inet == nil {
		return nil, fmt.Errorf("siphoc: gateway node %s needs a scenario with Internet", id)
	}
	host, err := s.net.AddHost(id, pos)
	if err != nil {
		return nil, err
	}
	n := &Node{scenario: s, host: host}
	cleanup := func() {
		n.Close()
		s.net.RemoveHost(id)
	}

	// MANET SLP agent (the routing-handler plugin owner).
	slpCfg := slp.Config{Mode: s.cfg.SLPMode, Clock: s.clk}
	if s.cfg.SLP != nil {
		slpCfg = *s.cfg.SLP
		if slpCfg.Clock == nil {
			slpCfg.Clock = s.clk
		}
	}
	if slpCfg.Obs == nil {
		slpCfg.Obs = s.obs
	}
	if slpCfg.Sched == nil {
		slpCfg.Sched = s.sched
	}
	n.agent = slp.NewAgent(host, slpCfg)

	// Routing protocol with the SLP plugin attached before start.
	switch o.routing {
	case RoutingAODV:
		cfg := aodv.SimConfig()
		cfg.Clock = s.clk
		cfg.Obs = s.obs
		cfg.Sched = s.sched
		cfg = scaleAODV(cfg, s.cfg.TimeScale)
		n.routing = aodv.New(host, cfg)
	case RoutingOLSR:
		cfg := olsr.SimConfig()
		if s.cfg.OLSR != nil {
			cfg = *s.cfg.OLSR
		}
		if cfg.Clock == nil {
			cfg.Clock = s.clk
		}
		if cfg.Obs == nil {
			cfg.Obs = s.obs
		}
		if cfg.Sched == nil {
			cfg.Sched = s.sched
		}
		cfg = scaleOLSR(cfg, s.cfg.TimeScale)
		n.routing = olsr.New(host, cfg)
	default:
		cleanup()
		return nil, fmt.Errorf("siphoc: unknown routing kind %v", o.routing)
	}
	n.agent.AttachRouting(n.routing)
	if err := n.routing.Start(); err != nil {
		cleanup()
		return nil, err
	}
	if err := n.agent.Start(); err != nil {
		cleanup()
		return nil, err
	}

	// Gateway Provider on Internet-connected nodes. Trunking rides the
	// scenario's shared media pacer.
	if o.gateway {
		gwCfg := core.GatewayConfig{Clock: s.clk, Obs: s.obs}
		if s.trunk {
			gwCfg.Trunk = &core.TrunkConfig{Pacer: s.pacer}
		}
		n.gateway = core.NewGatewayProvider(host, s.inet, n.agent, gwCfg)
		if err := n.gateway.Start(); err != nil {
			cleanup()
			return nil, err
		}
	}

	// Connection Provider everywhere else (a gateway is already attached).
	if !o.noConnPrvdr && !o.gateway {
		cpCfg := core.ConnProviderConfig{
			Clock:         s.clk,
			Obs:           s.obs,
			ProbeInterval: scaleDur(250*time.Millisecond, s.cfg.TimeScale),
			LookupTimeout: scaleDur(200*time.Millisecond, s.cfg.TimeScale),
			AckTimeout:    scaleDur(time.Second, s.cfg.TimeScale),
		}
		if s.prefix != "" {
			// Federation island: only addresses under the island's own
			// prefix are MANET-local; everything else (other islands, the
			// provider tier) leaves through the gateway tunnel.
			prefix := s.prefix + "."
			cpCfg.IsLocal = func(id netem.NodeID) bool {
				return strings.HasPrefix(string(id), prefix)
			}
			// Under a federation-scale call ramp the host is CPU-saturated
			// and a ping round trip routinely overshoots AckTimeout while
			// the gateway is perfectly alive. One spurious detach triggers a
			// blacklist + failover + re-registration storm that snowballs,
			// so tolerate a few missed probes before declaring it dead.
			cpCfg.MissedProbeLimit = 4
		}
		n.connp = core.NewConnectionProvider(host, n.agent, cpCfg)
		if err := n.connp.Start(); err != nil {
			cleanup()
			return nil, err
		}
	}

	// The SIPHoc proxy.
	sipCfg := sip.SimConfig()
	sipCfg.Clock = s.clk
	sipCfg.Sched = s.sched
	proxyCfg := core.ProxyConfig{
		SIP:          sipCfg,
		Clock:        s.clk,
		Obs:          s.obs,
		SLPTimeout:   scaleDur(2*time.Second, s.cfg.TimeScale),
		SLPCacheOnly: s.prefix != "",
	}
	if s.prefix != "" {
		// Federation workloads hold thousands of registrations across runs
		// that last minutes; the 60 s default would expire bindings mid-call
		// ramp. Nothing in the federation experiments tests expiry.
		proxyCfg.BindingTTL = time.Hour
	}
	if s.overlay != nil {
		// Third resolver backend: the P2P overlay registrar slots between
		// the SLP cache and DNS, and every local registration is published
		// into it (see core.ProxyConfig.Overlay).
		proxyCfg.Overlay = s.overlay
		proxyCfg.OverlayTimeout = scaleDur(2*time.Second, s.cfg.TimeScale)
	}
	n.proxy = core.NewProxy(host, n.agent, n.connp, proxyCfg)
	if err := n.proxy.Start(); err != nil {
		cleanup()
		return nil, err
	}
	return n, nil
}

func scaleDur(d time.Duration, f float64) time.Duration {
	if f == 1 {
		return d
	}
	return time.Duration(float64(d) * f)
}

func scaleAODV(c aodv.Config, f float64) aodv.Config {
	c.HelloInterval = scaleDur(c.HelloInterval, f)
	c.ActiveRouteTimeout = scaleDur(c.ActiveRouteTimeout, f)
	c.DiscoveryTimeout = scaleDur(c.DiscoveryTimeout, f)
	return c
}

func scaleOLSR(c olsr.Config, f float64) olsr.Config {
	c.HelloInterval = scaleDur(c.HelloInterval, f)
	c.TCInterval = scaleDur(c.TCInterval, f)
	c.NeighborHold = scaleDur(c.NeighborHold, f)
	c.TopologyHold = scaleDur(c.TopologyHold, f)
	c.RouteWait = scaleDur(c.RouteWait, f)
	return c
}

// ID returns the node's address.
func (n *Node) ID() NodeID { return n.host.ID() }

// Host exposes the node's network stack.
func (n *Node) Host() *netem.Host { return n.host }

// RoutingName returns the routing protocol in use ("AODV" or "OLSR").
func (n *Node) RoutingName() string { return n.routing.Name() }

// Routing exposes the node's routing protocol instance.
func (n *Node) Routing() routing.Protocol { return n.routing }

// SLP exposes the node's MANET SLP agent.
func (n *Node) SLP() *slp.Agent { return n.agent }

// Proxy exposes the node's SIPHoc proxy.
func (n *Node) Proxy() *core.Proxy { return n.proxy }

// Gateway exposes the node's Gateway Provider (nil for non-gateways).
func (n *Node) Gateway() *core.GatewayProvider { return n.gateway }

// ConnectionProvider exposes the node's Connection Provider (nil on
// gateways and nodes created with WithoutConnectionProvider).
func (n *Node) ConnectionProvider() *core.ConnectionProvider { return n.connp }

// InternetAttached reports whether the node currently reaches the Internet
// (as a gateway or through one).
func (n *Node) InternetAttached() bool {
	if n.gateway != nil {
		return true
	}
	if n.connp != nil {
		return n.connp.Attached()
	}
	return false
}

// NewPhone creates a softphone on this node configured exactly as the
// paper's Figure 2: account user@domain with the outbound proxy pointed at
// the local SIPHoc proxy.
func (n *Node) NewPhone(user, domain string) (*Phone, error) {
	return n.NewPhoneWith(PhoneConfig{User: user, Domain: domain})
}

// NewPhoneWith creates a softphone with explicit settings; OutboundProxy
// defaults to the local proxy and the port is auto-assigned when several
// phones share a node.
func (n *Node) NewPhoneWith(cfg PhoneConfig) (*Phone, error) {
	n.mu.Lock()
	count := len(n.phones)
	n.mu.Unlock()
	if cfg.OutboundProxy == (sip.Addr{}) {
		cfg.OutboundProxy = n.proxy.Addr()
	}
	if cfg.Port == 0 {
		cfg.Port = 5062 + uint16(2*count)
	}
	if cfg.SIP.T1 == 0 {
		cfg.SIP = sip.SimConfig()
		cfg.SIP.Clock = n.scenario.clk
	}
	if cfg.SIP.Sched == nil {
		cfg.SIP.Sched = n.scenario.sched
	}
	if cfg.Clock == nil {
		cfg.Clock = n.scenario.clk
	}
	if cfg.Obs == nil {
		cfg.Obs = n.scenario.obs
	}
	if cfg.MediaPacer == nil {
		cfg.MediaPacer = n.scenario.pacer
	}
	if cfg.RegisterTTL == 0 && n.scenario.prefix != "" {
		// Match the island proxy's federation binding TTL (see newNode):
		// the requested Expires overrides the registrar default, so a 60 s
		// phone TTL would win over the hour-long proxy/pool TTLs.
		cfg.RegisterTTL = time.Hour
	}
	ph := voip.New(n.host, cfg)
	if err := ph.Start(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.phones = append(n.phones, ph)
	n.mu.Unlock()
	return ph, nil
}

// newInternetPhone builds a phone for a host attached directly to the
// Internet, using the provider's proxy as its outbound proxy (the normal
// Internet SIP configuration, without SIPHoc in the path).
func newInternetPhone(host *netem.Host, user, password, domain string, proxy sip.Addr, clk clock.Clock, pacer *rtp.Pacer) *voip.Phone {
	sipCfg := sip.SimConfig()
	sipCfg.Clock = clk
	return voip.New(host, voip.Config{
		User: user, Password: password, Domain: domain,
		OutboundProxy: proxy,
		SIP:           sipCfg,
		Clock:         clk,
		MediaPacer:    pacer,
	})
}

// Close stops all services on the node.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	phones := n.phones
	n.phones = nil
	n.mu.Unlock()
	for _, ph := range phones {
		ph.Stop()
	}
	if n.proxy != nil {
		n.proxy.Stop()
	}
	if n.connp != nil {
		n.connp.Stop()
	}
	if n.gateway != nil {
		n.gateway.Stop()
	}
	if n.agent != nil {
		n.agent.Stop()
	}
	if n.routing != nil {
		n.routing.Stop()
	}
	n.host.Close()
}
