# Standard workflows for the siphoc repository.

GO ?= go

.PHONY: all build test race cover check bench bench-all fed profile faults fuzz experiments examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Pre-merge gate: static analysis plus the full test suite under the race
# detector. Run before every merge (see README.md "Development"). The
# observability trace/metrics tests run first as a fast-fail gate: they are
# the ones most sensitive to stats races; the rtp media plane follows because
# the shared pacer is the most write-contended path in the system.
check:
	$(GO) vet ./...
	$(GO) test -race -run 'TestCallTrace|TestMetrics|TestDialContext' .
	$(GO) test -race -short -run 'TestControlScaleSmoke' .
	$(GO) test -race -run 'TestFederationSmoke|TestFederationOverlayResolution' -count 1 .
	$(GO) test -race -run 'Fault|Partition|LinkQuality|Gateway|Proxy' ./internal/netem/ ./internal/core/ ./internal/slp/
	$(GO) test -race -short ./internal/overlay/
	$(GO) test -race -run 'TestIncrementalFullEquivalenceGolden' -count 1 ./internal/routing/olsr/
	$(GO) test -race ./internal/rtp/
	$(GO) test -race ./...

# Hot-path benchmark snapshots, committed as JSON so regressions show up in
# diffs. bench-all additionally runs the long E-series scenario benchmarks.
# The ControlScale and OverlayLookup snapshots are gated: the fresh run is
# compared against the committed BENCH_scale.json / BENCH_dht.json first
# (cmd/benchcmp fails on >25% regression of convergence_ms, allocs/node/s,
# lookup_ms or allocs/op), and only replaces it when it passes — a failing
# run leaves the .new file behind for inspection.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/netem/ | $(GO) run ./cmd/benchjson > BENCH_netem.json
	$(GO) test -run '^$$' -bench 'SIP' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_sip.json
	$(GO) test -run '^$$' -bench 'ObsOverhead' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_obs.json
	$(GO) test -run '^$$' -bench 'VoiceFrame|PacketParse|MediaScale' -benchmem ./internal/rtp/ | $(GO) run ./cmd/benchjson > BENCH_rtp.json
	$(GO) test -run '^$$' -bench 'OverlayLookup' -benchmem -timeout 10m ./internal/overlay/ | $(GO) run ./cmd/benchjson > BENCH_dht.json.new
	$(GO) run ./cmd/benchcmp BENCH_dht.json BENCH_dht.json.new
	mv BENCH_dht.json.new BENCH_dht.json
	$(GO) test -run '^$$' -bench 'ControlScale' -benchtime 1x -timeout 20m . | $(GO) run ./cmd/benchjson > BENCH_scale.json.new
	$(GO) run ./cmd/benchcmp BENCH_scale.json BENCH_scale.json.new
	mv BENCH_scale.json.new BENCH_scale.json
	$(MAKE) fed

# Federation scale snapshot: a 3-island × 2-gateway federation under a
# 1000-concurrent-call workload, trunked and untrunked, committed as
# BENCH_fed.json (see EXPERIMENTS.md "Federation — before/after").
# Sequenced, not piped: in a pipeline `go run ./cmd/benchjson` compiles
# while the benchmark's first variant attaches and ramps, and that CPU
# burst alone is enough to distort a saturation workload.
fed:
	$(GO) build -o /dev/null ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'Federation' -benchtime 1x -timeout 30m . > BENCH_fed.txt
	$(GO) run ./cmd/benchjson < BENCH_fed.txt > BENCH_fed.json
	rm -f BENCH_fed.txt

bench-all:
	$(GO) test -bench=. -benchmem ./...

# CPU + heap profile of the control-plane scale study. The top-10 flat CPU
# and allocation sites are written to PROFILE_scale.txt.new, diffed against
# the committed PROFILE_scale.txt (cmd/profdelta prints per-function flat%
# deltas and entries that joined or left each top-10 — informational, never
# fails the build), then promoted. Commit the refreshed summary alongside
# the change that moved it, and mirror it into EXPERIMENTS.md
# ("Control-plane scale — before/after") when the core changes.
profile:
	$(GO) test -run '^$$' -bench 'ControlScale' -benchtime 1x -timeout 20m \
		-cpuprofile cpu.pprof -memprofile mem.pprof -o siphoc.test .
	$(GO) tool pprof -top -nodecount=10 siphoc.test cpu.pprof | tee PROFILE_scale.txt.new
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space siphoc.test mem.pprof | tee -a PROFILE_scale.txt.new
	$(GO) run ./cmd/profdelta PROFILE_scale.txt PROFILE_scale.txt.new
	mv PROFILE_scale.txt.new PROFILE_scale.txt

# The full fault matrix under the race detector (deterministic replay,
# scenario recovery invariants, golden recovery traces), then the gateway
# failover latency distribution committed as JSON (see EXPERIMENTS.md
# "Failure matrix").
faults:
	$(GO) test -race -run 'Fault|Partition|LinkQuality|Gateway|Proxy' ./internal/netem/ ./internal/core/ ./internal/slp/
	$(GO) test -race -run 'TestFaultMatrix' -count 1 .
	$(GO) test -race -run 'TestPartitionHealGoldenRecovery' ./internal/rtp/
	$(GO) test -run '^$$' -bench 'GatewayFailover' -benchtime 5x . | $(GO) run ./cmd/benchjson > BENCH_faults.json

# Brief fuzzing pass over every fuzz target (extend -fuzztime for real
# campaigns; the committed corpora under testdata/fuzz run as normal tests).
fuzz:
	$(GO) test ./internal/sip/ -run XXX -fuzz FuzzParse$$ -fuzztime 30s
	$(GO) test ./internal/sdp/ -run XXX -fuzz FuzzParse$$ -fuzztime 15s
	$(GO) test ./internal/slp/ -run XXX -fuzz FuzzParsePayload$$ -fuzztime 15s
	$(GO) test ./internal/routing/ -run XXX -fuzz FuzzParseEnvelope$$ -fuzztime 15s
	$(GO) test ./internal/netem/ -run XXX -fuzz FuzzUnmarshalDatagram$$ -fuzztime 15s

# Regenerate every figure/claim of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/interop
	$(GO) run ./examples/campus
	$(GO) run ./examples/emergency

clean:
	$(GO) clean ./...
