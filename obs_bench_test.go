// Benchmarks quantifying the observability layer's overhead on the hot
// paths, in enabled-vs-disabled pairs: `make bench` records them in
// BENCH_obs.json. The budget (DESIGN.md §8) is ≤5% disabled-mode overhead
// on the medium broadcast path and the SIP codec.
package siphoc_test

import (
	"sync/atomic"
	"testing"
	"time"

	"siphoc/internal/netem"
	"siphoc/internal/obs"
	"siphoc/internal/sip"
)

func benchBroadcast64(b *testing.B, o *obs.Observer) {
	b.Helper()
	n := netem.NewNetwork(netem.Config{BaseDelay: 10 * time.Microsecond, Obs: o})
	defer n.Close()
	hosts, err := netem.Grid(n, 8, 8, 70, "g")
	if err != nil {
		b.Fatal(err)
	}
	var delivered atomic.Int64
	for _, h := range hosts {
		if err := h.HandleFrames(netem.KindRouting, func(netem.Frame) { delivered.Add(1) }); err != nil {
			b.Fatal(err)
		}
	}
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for b.Loop() {
		if err := hosts[i%len(hosts)].SendFrame(netem.Broadcast, netem.KindRouting, payload); err != nil {
			b.Fatal(err)
		}
		i++
	}
}

// BenchmarkObsOverheadBroadcast64 compares the 64-node broadcast-storm hot
// path with instrumentation disabled (nil observer: one nil check per frame)
// and enabled (two atomic adds per frame).
func BenchmarkObsOverheadBroadcast64(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { benchBroadcast64(b, nil) })
	b.Run("enabled", func(b *testing.B) { benchBroadcast64(b, obs.New(nil)) })
}

var benchInvite = []byte("INVITE sip:bob@voicehoc.ch SIP/2.0\r\n" +
	"Via: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK-abc\r\n" +
	"From: \"Alice\" <sip:alice@voicehoc.ch>;tag=1928\r\n" +
	"To: <sip:bob@voicehoc.ch>\r\n" +
	"Call-ID: a84b4c76e66710@10.0.0.1\r\n" +
	"CSeq: 314159 INVITE\r\n" +
	"Contact: <sip:alice@10.0.0.1:5062>\r\n" +
	"Max-Forwards: 70\r\nContent-Length: 0\r\n\r\n")

// BenchmarkObsOverheadSIPParse guards the SIP parser against hook creep: the
// codec deliberately carries no obs hooks (instrumentation sits in the
// transaction layer), so both modes must benchmark identically.
func BenchmarkObsOverheadSIPParse(b *testing.B) {
	for _, mode := range []string{"disabled", "enabled"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for b.Loop() {
				if _, err := sip.Parse(benchInvite); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsOverheadSIPMarshal is the marshalling half of the codec guard.
func BenchmarkObsOverheadSIPMarshal(b *testing.B) {
	m := sip.NewRequest(sip.MethodInvite, sip.MustParseURI("sip:bob@voicehoc.ch"))
	m.Via = []*sip.Via{{Transport: "UDP", Host: "10.0.0.1", Port: 5060,
		Params: map[string]string{"branch": "z9hG4bK-abc"}}}
	m.From = &sip.NameAddr{URI: sip.MustParseURI("sip:alice@voicehoc.ch")}
	m.From.SetTag("1928")
	m.To = &sip.NameAddr{URI: sip.MustParseURI("sip:bob@voicehoc.ch")}
	m.CallID = "a84b4c76e66710@10.0.0.1"
	m.CSeq = sip.CSeq{Seq: 314159, Method: sip.MethodInvite}
	for _, mode := range []string{"disabled", "enabled"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for b.Loop() {
				_ = m.Marshal()
			}
		})
	}
}

// BenchmarkObsOverheadCounter is the raw per-op cost of one counter
// increment: a nil check when disabled, an atomic add when enabled.
func BenchmarkObsOverheadCounter(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var o *obs.Observer
		c := o.Counter("bench.counter")
		for b.Loop() {
			c.Inc()
		}
	})
	b.Run("enabled", func(b *testing.B) {
		c := obs.New(nil).Counter("bench.counter")
		for b.Loop() {
			c.Inc()
		}
	})
}

// BenchmarkObsOverheadSpan is the raw per-op cost of one traced span
// (start + end with a clock read and a bounded ring insert when enabled).
func BenchmarkObsOverheadSpan(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var o *obs.Observer
		b.ReportAllocs()
		for b.Loop() {
			o.StartSpan("", "bench.phase", "node").End("")
		}
	})
	b.Run("enabled", func(b *testing.B) {
		o := obs.New(nil)
		b.ReportAllocs()
		for b.Loop() {
			o.StartSpan("", "bench.phase", "node").End("")
		}
	})
}
