package siphoc

import (
	"sort"
	"testing"
	"time"
)

// BenchmarkGatewayFailover measures the gateway failover latency end to end:
// a node attached through one of two gateways loses it (graceful shutdown —
// the crash path is exercised by the core fault tests) and re-attaches to
// the survivor. Each iteration reports the Connection Provider's own
// detach-to-reattach measurement; p50/p99 land in BENCH_faults.json via
// `make faults`.
func BenchmarkGatewayFailover(b *testing.B) {
	sc, err := NewScenario(ScenarioConfig{Internet: true, NoObservability: true})
	if err != nil {
		b.Fatal(err)
	}
	defer sc.Close()
	node, err := sc.AddNode("10.0.0.1", Position{})
	if err != nil {
		b.Fatal(err)
	}
	gws := map[NodeID]Position{
		"10.0.0.2": {X: 60},
		"10.0.0.3": {X: 70},
	}
	for id, pos := range gws {
		if _, err := sc.AddNode(id, pos, WithGateway()); err != nil {
			b.Fatal(err)
		}
	}
	if err := sc.WaitAttached(node, 30*time.Second); err != nil {
		b.Fatal(err)
	}
	cp := node.ConnectionProvider()

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for b.Loop() {
		dead := cp.Gateway()
		sc.RemoveNode(dead)
		deadline := time.Now().Add(30 * time.Second)
		for cp.Gateway() == dead || !cp.Attached() {
			if time.Now().After(deadline) {
				b.Fatalf("never failed over from %s", dead)
			}
			time.Sleep(2 * time.Millisecond)
		}
		lat = append(lat, cp.Stats().LastFailoverDur)
		// Bring the dead gateway back so the next iteration has a spare.
		if _, err := sc.AddNode(dead, gws[dead], WithGateway()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		p50 := lat[len(lat)/2]
		p99 := lat[(len(lat)*99)/100]
		b.ReportMetric(float64(p50)/float64(time.Millisecond), "p50-failover-ms")
		b.ReportMetric(float64(p99)/float64(time.Millisecond), "p99-failover-ms")
	}
}
