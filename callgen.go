package siphoc

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"siphoc/internal/rtp"
)

// CallGenConfig shapes a federation call workload: phones are provisioned
// across the islands, then calls arrive in rate-ramped stages, each call is
// held open with two-way voice until the whole target population is up
// concurrently, and finally everything drains.
type CallGenConfig struct {
	// Concurrent is the number of simultaneously established calls the
	// workload ramps to and holds (default 50).
	Concurrent int
	// Stages is the number of arrival-rate ramp stages; stage s launches
	// its share of calls at (s+1)× the base rate (default 4).
	Stages int
	// BaseInterval is the inter-arrival gap of the first (slowest) stage
	// (default 20ms).
	BaseInterval time.Duration
	// VoiceFrames is how many 20 ms voice frames each side streams while
	// the call is held (default 25, half a second of audio).
	VoiceFrames int
	// EstablishTimeout bounds each call's setup (default 30s).
	EstablishTimeout time.Duration
	// Seed drives caller/callee pairing (default 1).
	Seed int64
}

func (c CallGenConfig) withDefaults() CallGenConfig {
	if c.Concurrent == 0 {
		c.Concurrent = 50
	}
	if c.Stages == 0 {
		c.Stages = 4
	}
	if c.BaseInterval == 0 {
		c.BaseInterval = 20 * time.Millisecond
	}
	if c.VoiceFrames == 0 {
		c.VoiceFrames = 25
	}
	if c.EstablishTimeout == 0 {
		c.EstablishTimeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// CallGenReport is the workload's outcome: counts, setup-latency and MOS
// percentiles (from the federation's obs histograms), and the trunk's
// packet-rate evidence.
type CallGenReport struct {
	Attempted      int
	Established    int
	Failed         int
	PeakConcurrent int

	SetupP50, SetupP90, SetupP99 time.Duration
	MOSMean, MOSP10, MOSP50      float64

	// InternetDataFrames counts inter-gateway datagrams on the Internet
	// during the workload; with trunking the same payload count crosses in
	// far fewer frames.
	InternetDataFrames int64
	Trunk              TrunkStats

	// FailureReasons counts failed setups by error text — the first stop
	// when a workload run reports Failed > 0.
	FailureReasons map[string]int
}

// mosHistBounds buckets MOS (a 1.0–4.5 score) recorded as microseconds ×100,
// giving ~0.1-MOS resolution to the quantile interpolation.
var mosHistBounds = func() []time.Duration {
	var b []time.Duration
	for v := 10; v <= 45; v++ { // 1.0 … 4.5 step 0.1
		b = append(b, time.Duration(v)*10*time.Microsecond)
	}
	return b
}()

const mosUnit = 100 * time.Microsecond // 1.0 MOS on the histogram scale

// CallGenerator drives cross-island calls over a federation.
type CallGenerator struct {
	fed *FederationScenario
	cfg CallGenConfig
}

// NewCallGenerator builds a workload for the federation.
func (f *FederationScenario) NewCallGenerator(cfg CallGenConfig) *CallGenerator {
	return &CallGenerator{fed: f, cfg: cfg.withDefaults()}
}

// Run provisions phones, ramps the call arrivals, holds the full population
// open with two-way voice, drains, and reports. It is synchronous.
func (g *CallGenerator) Run() (CallGenReport, error) {
	cfg := g.cfg
	fed := g.fed
	clients := fed.Clients()
	if len(clients) < 2 {
		return CallGenReport{}, fmt.Errorf("siphoc: callgen needs at least two client nodes")
	}
	clk := fed.Clock()
	observer := fed.Observer()
	setupHist := observer.Histogram("fed.setup.delay", nil)
	mosHist := observer.Histogram("fed.mos", mosHistBounds)

	// Provision one caller and one callee phone per call slot. Callees are
	// deliberately placed on a different island than their caller so every
	// call crosses gateways and the provider tier.
	rng := rand.New(rand.NewSource(cfg.Seed))
	islandOf := func(n *Node) int {
		for i, sc := range fed.Islands() {
			if sc.Node(n.ID()) != nil {
				return i
			}
		}
		return -1
	}
	type pair struct {
		caller, callee *Phone
		calleeAOR      string
	}
	pairs := make([]pair, 0, cfg.Concurrent)
	for k := range cfg.Concurrent {
		callerNode := clients[rng.Intn(len(clients))]
		var calleeNode *Node
		for {
			calleeNode = clients[rng.Intn(len(clients))]
			if islandOf(calleeNode) != islandOf(callerNode) {
				break
			}
		}
		cu, eu := fmt.Sprintf("c%d", k), fmt.Sprintf("e%d", k)
		fed.Pool().AddAccount(cu)
		fed.Pool().AddAccount(eu)
		caller, err := callerNode.NewPhone(cu, fed.cfg.Domain)
		if err != nil {
			return CallGenReport{}, fmt.Errorf("siphoc: callgen caller %d: %w", k, err)
		}
		callee, err := calleeNode.NewPhone(eu, fed.cfg.Domain)
		if err != nil {
			return CallGenReport{}, fmt.Errorf("siphoc: callgen callee %d: %w", k, err)
		}
		if err := retryRegister(caller); err != nil {
			return CallGenReport{}, fmt.Errorf("siphoc: callgen register %s: %w", caller.AOR(), err)
		}
		if err := retryRegister(callee); err != nil {
			return CallGenReport{}, fmt.Errorf("siphoc: callgen register %s: %w", callee.AOR(), err)
		}
		pairs = append(pairs, pair{caller: caller, callee: callee, calleeAOR: callee.AOR()})
	}

	// Upstream registrations propagate to the provider tier asynchronously
	// through the gateway tunnels; don't start dialing before every callee
	// is routable at the pool, or the earliest calls 404.
	bindDeadline := clk.Now().Add(cfg.EstablishTimeout)
	for _, p := range pairs {
		for {
			if _, ok := fed.Pool().Binding(p.calleeAOR); ok {
				break
			}
			if clk.Now().After(bindDeadline) {
				return CallGenReport{}, fmt.Errorf("siphoc: callgen: %s never reached the provider tier", p.calleeAOR)
			}
			clk.Sleep(5 * time.Millisecond)
		}
	}
	// With the overlay registrar up, callers resolve through the DHT before
	// the provider tier — and its publish path (REGISTER → island client →
	// STOREs on the K closest nodes) is just as asynchronous, so the same
	// pre-dial barrier applies: every callee must be resolvable in the
	// overlay or the earliest calls fall through to DNS and skew the
	// backend-comparison counters.
	if oc := fed.OverlayClient(0); oc != nil {
		for _, p := range pairs {
			for {
				if _, err := oc.Lookup(p.calleeAOR, time.Second); err == nil {
					break
				}
				if clk.Now().After(bindDeadline) {
					return CallGenReport{}, fmt.Errorf("siphoc: callgen: %s never reached the overlay registrar", p.calleeAOR)
				}
				clk.Sleep(5 * time.Millisecond)
			}
		}
	}

	// Callee side: answer (auto-answer is on) and stream voice back so the
	// caller's receive path has media to score. callersDone closes once every
	// caller goroutine has returned — past that point no INVITE (including
	// redials) can arrive, so waiting callees exit immediately instead of
	// serving out an arbitrary timeout.
	callersDone := make(chan struct{})
	var calleeWG sync.WaitGroup
	for _, p := range pairs {
		calleeWG.Add(1)
		go func(ph *Phone) {
			defer calleeWG.Done()
			// Loop: a cancelled first attempt (caller redial) must not eat
			// the one incoming slot this goroutine serves.
			for {
				select {
				case inc := <-ph.Incoming():
					if inc.WaitEstablished(cfg.EstablishTimeout) == nil {
						inc.StartVoice(cfg.VoiceFrames).Wait()
						return
					}
				case <-callersDone:
					return
				}
			}
		}(p.callee)
	}

	var (
		established atomic.Int64
		failed      atomic.Int64
		concurrent  atomic.Int64
		peak        atomic.Int64
		holdMu      sync.Mutex
		holdCond    = sync.NewCond(&holdMu)
		setupsMu    sync.Mutex
		setups      []time.Duration
		moss        []float64
		failures    = make(map[string]int)
	)
	// wake runs whenever a call's setup resolves so holders re-check the
	// barrier below.
	wake := func() {
		holdMu.Lock()
		holdCond.Broadcast()
		holdMu.Unlock()
	}
	setupResolved := func() bool {
		return established.Load()+failed.Load() >= int64(len(pairs))
	}
	recordFailure := func(err error) {
		failed.Add(1)
		setupsMu.Lock()
		failures[err.Error()]++
		setupsMu.Unlock()
		wake()
	}

	dataBefore := fed.Internet().Network().Stats().DataFrames
	var callWG sync.WaitGroup
	runCall := func(p pair) {
		defer callWG.Done()
		t0 := clk.Now()
		// A failed setup gets one redial — what a human caller does, and
		// what keeps transient congestion during the ramp from deflating
		// the held population.
		var call *Call
		var lastErr error
		for attempt := 0; attempt < 2 && call == nil; attempt++ {
			c, err := p.caller.Dial(p.calleeAOR)
			if err != nil {
				lastErr = err
				continue
			}
			if err := c.WaitEstablished(cfg.EstablishTimeout); err != nil {
				_ = c.Cancel()
				lastErr = err
				continue
			}
			call = c
		}
		if call == nil {
			recordFailure(lastErr)
			return
		}
		setup := clk.Now().Sub(t0)
		setupHist.Observe(setup)
		setupsMu.Lock()
		setups = append(setups, setup)
		setupsMu.Unlock()
		established.Add(1)
		cur := concurrent.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		wake()
		// Hold the call open until every call's setup has resolved: the
		// workload's concurrency target is met with the whole established
		// population up at once.
		holdMu.Lock()
		for !setupResolved() {
			holdCond.Wait()
		}
		holdMu.Unlock()
		// Two-way voice while held; the caller scores its receive side.
		call.StartVoice(cfg.VoiceFrames).Wait()
		stats := call.MediaStats()
		if stats.Received > 0 {
			mosHist.Observe(time.Duration(stats.MOS * float64(mosUnit)))
			setupsMu.Lock()
			moss = append(moss, stats.MOS)
			setupsMu.Unlock()
		}
		_ = call.Hangup()
		concurrent.Add(-1)
	}

	// Arrival-rate ramp: later stages launch their share at a higher rate.
	next := 0
	perStage := (len(pairs) + cfg.Stages - 1) / cfg.Stages
	for s := 0; s < cfg.Stages && next < len(pairs); s++ {
		interval := cfg.BaseInterval / time.Duration(s+1)
		for i := 0; i < perStage && next < len(pairs); i++ {
			callWG.Add(1)
			go runCall(pairs[next])
			next++
			clk.Sleep(interval)
		}
	}
	callWG.Wait()
	close(callersDone)
	calleeWG.Wait()

	// Drain in-flight trunk flushes before snapshotting: a call's last media
	// frames can still sit in a paced flush window when it ends, which would
	// otherwise read as batched-but-undelivered payloads.
	prevTrunk := fed.TrunkStats()
	for range 50 {
		clk.Sleep(rtp.FrameDuration)
		cur := fed.TrunkStats()
		if cur == prevTrunk {
			break
		}
		prevTrunk = cur
	}

	report := CallGenReport{
		Attempted:          len(pairs),
		Established:        int(established.Load()),
		Failed:             int(failed.Load()),
		PeakConcurrent:     int(peak.Load()),
		InternetDataFrames: fed.Internet().Network().Stats().DataFrames - dataBefore,
		Trunk:              fed.TrunkStats(),
	}
	if len(failures) > 0 {
		report.FailureReasons = failures
	}
	if observer.Enabled() {
		snap := observer.Snapshot()
		if h, ok := snap.Histograms["fed.setup.delay"]; ok {
			report.SetupP50 = h.Quantile(0.50)
			report.SetupP90 = h.Quantile(0.90)
			report.SetupP99 = h.Quantile(0.99)
		}
		if h, ok := snap.Histograms["fed.mos"]; ok && h.Count > 0 {
			report.MOSMean = float64(h.Mean()) / float64(mosUnit)
			report.MOSP10 = float64(h.Quantile(0.10)) / float64(mosUnit)
			report.MOSP50 = float64(h.Quantile(0.50)) / float64(mosUnit)
		}
	} else {
		// No observer: fall back to the locally collected samples.
		report.SetupP50, report.SetupP90, report.SetupP99 = durQuantiles(setups)
		if len(moss) > 0 {
			sort.Float64s(moss)
			var sum float64
			for _, v := range moss {
				sum += v
			}
			report.MOSMean = sum / float64(len(moss))
			report.MOSP10 = moss[len(moss)/10]
			report.MOSP50 = moss[len(moss)/2]
		}
	}
	return report, nil
}

func durQuantiles(ds []time.Duration) (p50, p90, p99 time.Duration) {
	if len(ds) == 0 {
		return 0, 0, 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(ds)-1))
		return ds[i]
	}
	return at(0.50), at(0.90), at(0.99)
}

// retryRegister retries a phone's upstream registration a few times: with
// hundreds of phones registering through freshly attached tunnels, the
// first attempt can race the gateway handshake.
func retryRegister(ph *Phone) error {
	var err error
	for range 3 {
		if err = ph.Register(); err == nil {
			return nil
		}
	}
	return err
}
