package siphoc_test

import (
	"os"
	"testing"
	"time"

	"siphoc"
)

// TestFedDiag is a manual diagnostic: SIPHOC_FED_DIAG=1000 go test -run
// TestFedDiag -v . It runs one trunked federation point and dumps the
// call-generator report including the failure-reason breakdown.
func TestFedDiag(t *testing.T) {
	n := 0
	if v := os.Getenv("SIPHOC_FED_DIAG"); v != "" {
		for _, c := range v {
			n = n*10 + int(c-'0')
		}
	}
	if n == 0 {
		t.Skip("set SIPHOC_FED_DIAG=<calls> to run")
	}
	fed, err := siphoc.NewFederationScenario(siphoc.FederationConfig{
		Islands:           3,
		GatewaysPerIsland: 2,
		ClientsPerIsland:  6,
		Shards:            4,
		Trunk:             true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if err := fed.WaitAttached(time.Minute); err != nil {
		t.Fatal(err)
	}
	gen := fed.NewCallGenerator(siphoc.CallGenConfig{
		Concurrent:       n,
		EstablishTimeout: 2 * time.Minute,
	})
	start := time.Now()
	rep, err := gen.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wall %v report %+v", time.Since(start), rep)
	var reg, det, fo int64
	for _, sc := range fed.Islands() {
		mm := sc.Metrics()
		for _, cs := range mm.ConnProviders {
			det += cs.Detaches
			fo += cs.Failovers
		}
		for _, ps := range mm.Proxies {
			reg += ps.Registers
		}
	}
	t.Logf("detaches=%d failovers=%d proxyRegisters=%d", det, fo, reg)
}
