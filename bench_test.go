// Benchmarks backing the experiment index in DESIGN.md §4: one benchmark
// per reproducible figure/claim (E1, E8, E9) plus micro-benchmarks for the
// protocol substrates on the hot path. The full parameter sweeps with shape
// assertions live in cmd/experiments; these benchmarks provide the
// regenerable ns/op numbers recorded in EXPERIMENTS.md.
package siphoc_test

import (
	"fmt"
	"testing"
	"time"

	"siphoc"
	"siphoc/internal/netem"
	"siphoc/internal/routing/aodv"
	"siphoc/internal/rtp"
	"siphoc/internal/sip"
	"siphoc/internal/slp"
)

// benchChain builds a registered Alice/Bob pair on an n-node chain.
func benchChain(b *testing.B, n int, routing siphoc.RoutingKind) (*siphoc.Scenario, *siphoc.Phone) {
	b.Helper()
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{Routing: routing})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sc.Close)
	nodes, err := sc.Chain(n, 90)
	if err != nil {
		b.Fatal(err)
	}
	alice, err := nodes[0].NewPhone("alice", "voicehoc.ch")
	if err != nil {
		b.Fatal(err)
	}
	bob, err := nodes[n-1].NewPhone("bob", "voicehoc.ch")
	if err != nil {
		b.Fatal(err)
	}
	register := func(ph *siphoc.Phone) {
		var err error
		for range 5 {
			if err = ph.Register(); err == nil {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		b.Fatal(err)
	}
	register(alice)
	register(bob)
	// Warm the caller-side SLP cache so iterations measure call setup,
	// not epidemic dissemination.
	if _, err := nodes[0].SLP().Lookup("sip", "bob@voicehoc.ch", 10*time.Second); err != nil {
		b.Fatal(err)
	}
	return sc, alice
}

func dialOnce(b *testing.B, alice *siphoc.Phone) {
	b.Helper()
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		b.Fatal(err)
	}
	if err := call.WaitEstablished(20 * time.Second); err != nil {
		b.Fatal(err)
	}
	if err := call.Hangup(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkE1CallSetupFlow measures the paper's Figure 3 flow: a complete
// INVITE/200/ACK/BYE exchange through two SIPHoc proxies over a 2-hop MANET.
func BenchmarkE1CallSetupFlow(b *testing.B) {
	_, alice := benchChain(b, 3, siphoc.RoutingAODV)
	dialOnce(b, alice) // warm the route
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		dialOnce(b, alice)
	}
}

// BenchmarkE8SetupDelayVsHops measures warm-route call setup against hop
// count for both routing protocols (experiment E8's steady-state rows).
func BenchmarkE8SetupDelayVsHops(b *testing.B) {
	for _, routing := range []siphoc.RoutingKind{siphoc.RoutingAODV, siphoc.RoutingOLSR} {
		for _, hops := range []int{1, 2, 4, 6} {
			b.Run(fmt.Sprintf("%s/hops=%d", routing, hops), func(b *testing.B) {
				_, alice := benchChain(b, hops+1, routing)
				dialOnce(b, alice)
				b.ReportAllocs()
				b.ResetTimer()
				for b.Loop() {
					dialOnce(b, alice)
				}
			})
		}
	}
}

// BenchmarkE9DiscoveryOverhead measures service-discovery propagation: each
// iteration registers a fresh binding at one end of an 6-node chain and
// resolves it from the other end. Sub-benchmarks compare the paper's
// piggyback mode with the multicast-SLP baseline; the svcframes/op metric
// shows the dedicated-frame cost (0 for piggyback).
func BenchmarkE9DiscoveryOverhead(b *testing.B) {
	for _, mode := range []slp.Mode{slp.ModePiggyback, slp.ModeMulticast} {
		b.Run(mode.String(), func(b *testing.B) {
			net := netem.NewNetwork(netem.Config{BaseDelay: 100 * time.Microsecond})
			b.Cleanup(net.Close)
			hosts, err := netem.Chain(net, 6, 90, "10.0.0")
			if err != nil {
				b.Fatal(err)
			}
			agents := make([]*slp.Agent, len(hosts))
			for i, h := range hosts {
				proto := aodv.New(h, aodv.SimConfig())
				agents[i] = slp.NewAgent(h, slp.Config{Mode: mode})
				agents[i].AttachRouting(proto)
				if err := proto.Start(); err != nil {
					b.Fatal(err)
				}
				b.Cleanup(proto.Stop)
				if err := agents[i].Start(); err != nil {
					b.Fatal(err)
				}
				b.Cleanup(agents[i].Stop)
			}
			net.ResetStats()
			b.ReportAllocs()
			b.ResetTimer()
			i := 0
			for b.Loop() {
				i++
				key := fmt.Sprintf("user%d@voicehoc.ch", i)
				if err := agents[0].Register(slp.Service{
					Type: "sip", Key: key, URL: "service:sip://10.0.0.1:5060",
				}); err != nil {
					b.Fatal(err)
				}
				if _, err := agents[len(agents)-1].Lookup("sip", key, 20*time.Second); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := net.Stats()
			b.ReportMetric(float64(st.ServiceFrames)/float64(b.N), "svcframes/op")
			b.ReportMetric(float64(st.ServiceBytes)/float64(b.N), "svcB/op")
			b.ReportMetric(float64(st.RoutingBytes)/float64(b.N), "routingB/op")
		})
	}
}

// BenchmarkE5InternetCall measures a MANET-to-Internet call through the
// gateway tunnel (experiment E5's steady-state cost).
func BenchmarkE5InternetCall(b *testing.B) {
	sc, err := siphoc.NewScenario(siphoc.ScenarioConfig{Internet: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sc.Close)
	prov, err := sc.AddProvider(siphoc.ProviderConfig{Domain: "voicehoc.ch"})
	if err != nil {
		b.Fatal(err)
	}
	prov.AddAccount("alice")
	prov.AddAccount("carol")
	if _, err := sc.AddNode("10.0.0.1", siphoc.Position{X: 50}, siphoc.WithGateway()); err != nil {
		b.Fatal(err)
	}
	node, err := sc.AddNode("10.0.0.2", siphoc.Position{})
	if err != nil {
		b.Fatal(err)
	}
	carol, err := sc.AddInternetPhone("carol", "voicehoc.ch", "ua.carol.net")
	if err != nil {
		b.Fatal(err)
	}
	if err := carol.Register(); err != nil {
		b.Fatal(err)
	}
	if err := sc.WaitAttached(node, 30*time.Second); err != nil {
		b.Fatal(err)
	}
	alice, err := node.NewPhone("alice", "voicehoc.ch")
	if err != nil {
		b.Fatal(err)
	}
	if err := alice.Register(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		call, err := alice.Dial("carol@voicehoc.ch")
		if err != nil {
			b.Fatal(err)
		}
		if err := call.WaitEstablished(20 * time.Second); err != nil {
			b.Fatal(err)
		}
		if err := call.Hangup(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks (hot paths) ---

func BenchmarkSIPParse(b *testing.B) {
	raw := []byte("INVITE sip:bob@voicehoc.ch SIP/2.0\r\n" +
		"Via: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK-abc\r\n" +
		"From: \"Alice\" <sip:alice@voicehoc.ch>;tag=1928\r\n" +
		"To: <sip:bob@voicehoc.ch>\r\n" +
		"Call-ID: a84b4c76e66710@10.0.0.1\r\n" +
		"CSeq: 314159 INVITE\r\n" +
		"Contact: <sip:alice@10.0.0.1:5062>\r\n" +
		"Max-Forwards: 70\r\nContent-Length: 0\r\n\r\n")
	b.ReportAllocs()
	for b.Loop() {
		if _, err := sip.Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSIPMarshal(b *testing.B) {
	m := sip.NewRequest(sip.MethodInvite, sip.MustParseURI("sip:bob@voicehoc.ch"))
	m.Via = []*sip.Via{{Transport: "UDP", Host: "10.0.0.1", Port: 5060,
		Params: map[string]string{"branch": "z9hG4bK-abc"}}}
	m.From = &sip.NameAddr{URI: sip.MustParseURI("sip:alice@voicehoc.ch")}
	m.From.SetTag("1928")
	m.To = &sip.NameAddr{URI: sip.MustParseURI("sip:bob@voicehoc.ch")}
	m.CallID = "a84b4c76e66710@10.0.0.1"
	m.CSeq = sip.CSeq{Seq: 314159, Method: sip.MethodInvite}
	b.ReportAllocs()
	for b.Loop() {
		_ = m.Marshal()
	}
}

func BenchmarkAODVRREQCodec(b *testing.B) {
	m := &aodv.RREQ{ID: 42, HopCount: 3, TTL: 30, Orig: "10.0.0.1", OrigSeq: 7,
		Dst: "10.0.0.9", DstSeq: 5, UnknownSeq: true}
	b.ReportAllocs()
	for b.Loop() {
		raw := m.Marshal()
		if _, err := aodv.ParseRREQ(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSLPPayloadCodec(b *testing.B) {
	p := &slp.Payload{
		Adverts: []slp.Advert{{
			Type: "sip", Key: "alice@voicehoc.ch",
			URL: "service:sip://10.0.0.1:5060", Origin: "10.0.0.1", Seq: 7, TTLSec: 30,
		}},
		Queries: []slp.Query{{Type: "sip", Key: "bob@voicehoc.ch", Origin: "10.0.0.2", ID: 3, Hops: 8}},
	}
	b.ReportAllocs()
	for b.Loop() {
		raw := p.Marshal()
		if _, err := slp.ParsePayload(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTPOverMANET measures media throughput across a 2-hop MANET path
// (frames are paced at the codec rate, so ns/op reflects the 20ms frame
// interval; the metric of interest is zero loss at line rate).
func BenchmarkRTPOverMANET(b *testing.B) {
	sc, alice := benchChain(b, 3, siphoc.RoutingAODV)
	_ = sc
	call, err := alice.Dial("bob@voicehoc.ch")
	if err != nil {
		b.Fatal(err)
	}
	if err := call.WaitEstablished(20 * time.Second); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = call.Hangup() })
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if n := call.SendVoice(1); n != 1 {
			b.Fatal("frame not sent")
		}
		// Pace at the codec frame rate, as a phone would; ns/op is
		// therefore ≈ the 20ms frame interval when the path keeps up.
		time.Sleep(rtp.FrameDuration)
	}
}
